// Tests for the record-once/replay-many evaluation fast path: trace
// recording, settings substitution at replay, bit-identity against the
// interpreted/native paths, static settings-invariance checks, and the
// objective-level state machine (including fallback for kernels whose op
// stream depends on the tuned settings).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "config/space.hpp"
#include "config/stack_settings.hpp"
#include "discovery/discovery.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"
#include "mpisim/mpisim.hpp"
#include "obs/metrics.hpp"
#include "pfs/pfs.hpp"
#include "replay/hooks.hpp"
#include "replay/invariance.hpp"
#include "replay/optrace.hpp"
#include "replay/replayer.hpp"
#include "trace/meter.hpp"
#include "tuner/objective.hpp"
#include "workloads/sources.hpp"
#include "workloads/workload.hpp"

namespace tunio {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Deterministically varied configurations covering the space.
std::vector<cfg::Configuration> varied_configs(const cfg::ConfigSpace& space,
                                               int count) {
  std::vector<cfg::Configuration> configs;
  Rng rng(0x5EED);
  for (int i = 0; i < count; ++i) {
    cfg::Configuration config = space.default_configuration();
    for (std::size_t p = 0; p < space.num_parameters(); ++p) {
      config.set_index(p, rng.index(space.parameter(p).domain.size()));
    }
    configs.push_back(config);
  }
  return configs;
}

std::shared_ptr<const wl::Workload> small_workload(const std::string& name) {
  if (name == "VPIC-IO") {
    wl::VpicParams params;
    params.particles_per_rank = 1u << 14;
    return std::shared_ptr<const wl::Workload>(wl::make_vpic(params));
  }
  if (name == "FLASH-IO") {
    wl::FlashParams params;
    params.blocks_per_rank = 2;
    return std::shared_ptr<const wl::Workload>(wl::make_flash(params));
  }
  if (name == "HACC-IO") {
    wl::HaccParams params;
    params.particles_per_rank = 1u << 14;
    return std::shared_ptr<const wl::Workload>(wl::make_hacc(params));
  }
  if (name == "MACSio") {
    wl::MacsioParams params;
    params.num_dumps = 2;
    params.bytes_per_rank_per_dump = 1 * MiB;
    params.log_writes_per_dump = 16;
    return std::shared_ptr<const wl::Workload>(wl::make_macsio(params));
  }
  wl::BdcatsParams params;
  params.particles_per_rank = 1u << 14;
  params.clustering_rounds = 2;
  return std::shared_ptr<const wl::Workload>(wl::make_bdcats(params));
}

const char* kWorkloadNames[] = {"VPIC-IO", "FLASH-IO", "HACC-IO", "MACSio",
                                "BD-CATS"};

constexpr unsigned kRanks = 16;

tuner::TestbedOptions testbed(tuner::ReplayMode mode) {
  tuner::TestbedOptions tb;
  tb.num_ranks = kRanks;
  tb.runs_per_eval = 2;
  tb.replay = mode;
  return tb;
}

/// A kernel whose op stream branches on a tuned parameter: it must be
/// statically classified settings-dependent and never replayed.
const char* kSettingsDependentKernel = R"(
int main() {
  int per = 1024;
  if (tuned_stripe_count() > 4) {
    per = 4096;
  }
  int f = h5fcreate("/scratch/dep.h5");
  int d = h5dcreate(f, "x", 8, per * mpi_size());
  h5dwrite_all(d, per);
  h5fclose(f);
  return 0;
}
)";

// --- recorder basics ------------------------------------------------------

TEST(Recorder, EmptyRecorderIsInvalid) {
  replay::Recorder recorder;
  EXPECT_FALSE(recorder.valid());
}

TEST(Recorder, NotRecordingOutsideScope) {
  EXPECT_FALSE(replay::recording());
  replay::Recorder recorder;
  {
    replay::RecordScope scope(recorder);
    EXPECT_TRUE(replay::recording());
    replay::SuppressScope suppress;
    EXPECT_FALSE(replay::recording());
  }
  EXPECT_FALSE(replay::recording());
}

TEST(Recorder, CapturesInterpreterRun) {
  replay::Recorder recorder;
  const minic::Program program = minic::parse(wl::sources::vpic());
  {
    mpisim::MpiSim mpi(kRanks);
    pfs::PfsSimulator fs;
    replay::RecordScope scope(recorder);
    interp::execute(program, mpi, fs,
                    cfg::default_settings());
  }
  ASSERT_TRUE(recorder.valid()) << recorder.error();
  const replay::OpTrace trace = recorder.take();
  EXPECT_GT(trace.ops.size(), 10u);
  EXPECT_GT(trace.num_files, 0u);
  EXPECT_GT(trace.num_datasets, 0u);
  EXPECT_EQ(trace.ops.front().kind, replay::OpKind::kMeterBegin);
  EXPECT_EQ(trace.ops.back().kind, replay::OpKind::kMeterEnd);
}

// --- differential replay vs interpretation --------------------------------

/// Records one interpreted run at default settings, then checks that
/// replaying the trace under several other configurations is bit-identical
/// to interpreting the program under those configurations.
void expect_replay_matches_interp(const minic::Program& program) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  replay::Recorder recorder;
  {
    mpisim::MpiSim mpi(kRanks);
    pfs::PfsSimulator fs;
    replay::RecordScope scope(recorder);
    interp::execute(program, mpi, fs,
                    cfg::resolve(space.default_configuration()));
  }
  ASSERT_TRUE(recorder.valid()) << recorder.error();
  const replay::OpTrace trace = recorder.take();

  for (const cfg::Configuration& config : varied_configs(space, 4)) {
    const cfg::StackSettings settings = cfg::resolve(config);
    mpisim::MpiSim interp_mpi(kRanks);
    pfs::PfsSimulator interp_fs;
    const interp::InterpResult want =
        interp::execute(program, interp_mpi, interp_fs, settings);
    mpisim::MpiSim replay_mpi(kRanks);
    pfs::PfsSimulator replay_fs;
    const replay::ReplayResult got =
        replay::replay(trace, replay_mpi, replay_fs, settings);
    EXPECT_TRUE(replay::bit_identical(want.perf, got.perf))
        << "perf diverged at " << config.to_string();
    EXPECT_TRUE(same_bits(want.sim_seconds, got.sim_seconds))
        << "sim time diverged at " << config.to_string();
  }
}

TEST(ReplayDifferential, VpicSource) {
  expect_replay_matches_interp(minic::parse(wl::sources::vpic()));
}

TEST(ReplayDifferential, FlashSource) {
  expect_replay_matches_interp(minic::parse(wl::sources::flash()));
}

TEST(ReplayDifferential, HaccSource) {
  expect_replay_matches_interp(minic::parse(wl::sources::hacc()));
}

TEST(ReplayDifferential, MacsioSource) {
  expect_replay_matches_interp(minic::parse(wl::sources::macsio_vpic()));
}

TEST(ReplayDifferential, BdcatsSource) {
  expect_replay_matches_interp(minic::parse(wl::sources::bdcats()));
}

TEST(ReplayDifferential, DiscoveredKernels) {
  for (const char* name : kWorkloadNames) {
    discovery::DiscoveryOptions options;
    options.loop_reduction = 0.01;
    options.path_switching = true;
    const discovery::KernelResult kernel =
        discovery::discover_io(*wl::sources::source_for(name), options);
    SCOPED_TRACE(name);
    expect_replay_matches_interp(kernel.kernel);
  }
}

/// Records a native workload driver's run and checks replay matches a
/// fresh driver run under other configurations.
void expect_replay_matches_driver(const std::string& name) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const std::shared_ptr<const wl::Workload> workload = small_workload(name);
  replay::Recorder recorder;
  {
    mpisim::MpiSim mpi(kRanks);
    pfs::PfsSimulator fs;
    replay::RecordScope scope(recorder);
    workload->run(mpi, fs, cfg::resolve(space.default_configuration()), {});
  }
  ASSERT_TRUE(recorder.valid()) << recorder.error();
  const replay::OpTrace trace = recorder.take();

  for (const cfg::Configuration& config : varied_configs(space, 2)) {
    const cfg::StackSettings settings = cfg::resolve(config);
    mpisim::MpiSim driver_mpi(kRanks);
    pfs::PfsSimulator driver_fs;
    const wl::RunResult want =
        workload->run(driver_mpi, driver_fs, settings, {});
    mpisim::MpiSim replay_mpi(kRanks);
    pfs::PfsSimulator replay_fs;
    const replay::ReplayResult got =
        replay::replay(trace, replay_mpi, replay_fs, settings);
    EXPECT_TRUE(replay::bit_identical(want.perf, got.perf))
        << name << " perf diverged at " << config.to_string();
    EXPECT_TRUE(same_bits(want.sim_seconds, got.sim_seconds))
        << name << " sim time diverged at " << config.to_string();
  }
}

TEST(ReplayDifferential, NativeDrivers) {
  for (const char* name : kWorkloadNames) {
    SCOPED_TRACE(name);
    expect_replay_matches_driver(name);
  }
}

// --- static settings-invariance -------------------------------------------

TEST(ReplayInvariance, WorkloadSourcesAreSettingsInvariant) {
  for (const char* name : kWorkloadNames) {
    const auto source = wl::sources::source_for(name);
    ASSERT_TRUE(source.has_value()) << name;
    EXPECT_FALSE(replay::settings_dependent(minic::parse(*source))) << name;
  }
}

TEST(ReplayInvariance, UnknownWorkloadNameHasNoSource) {
  EXPECT_FALSE(wl::sources::source_for("NOT-A-WORKLOAD").has_value());
}

TEST(ReplayInvariance, TunedBranchIsSettingsDependent) {
  EXPECT_TRUE(
      replay::settings_dependent(minic::parse(kSettingsDependentKernel)));
}

TEST(ReplayInvariance, DeadTunedReadStaysInvariant) {
  // The def-use slicer proves the tuned value never reaches an op-emitting
  // statement, so the trace is reusable despite the tuned_* call.
  const minic::Program program = minic::parse(R"(
int main() {
  int unused = tuned_cb_nodes();
  int f = h5fcreate("/scratch/dead.h5");
  int d = h5dcreate(f, "x", 8, 1024 * mpi_size());
  h5dwrite_all(d, 1024);
  h5fclose(f);
  return 0;
}
)");
  EXPECT_FALSE(replay::settings_dependent(program));
}

TEST(ReplayInvariance, TunedBuiltinsReadTheSettings) {
  // tuned_* builtins must report the active configuration so a kernel can
  // genuinely branch on it (which is what disqualifies it from replay).
  const minic::Program program = minic::parse(R"(
int main() {
  return tuned_stripe_count() * 1000000 + tuned_stripe_size_kib() * 100
       + tuned_cb_nodes();
}
)");
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  cfg::Configuration config = space.default_configuration();
  config.set_index(space.index_of("striping_factor"), 3);
  const cfg::StackSettings settings = cfg::resolve(config);
  mpisim::MpiSim mpi(kRanks);
  pfs::PfsSimulator fs;
  const interp::InterpResult result =
      interp::execute(program, mpi, fs, settings);
  const std::int64_t expected =
      static_cast<std::int64_t>(settings.lustre.stripe_count.value_or(
          fs.profile().default_stripe_count)) *
          1000000 +
      static_cast<std::int64_t>(
          settings.lustre.stripe_size.value_or(
              fs.profile().default_stripe_size) /
          1024) *
          100 +
      static_cast<std::int64_t>(settings.mpiio.cb_nodes);
  EXPECT_EQ(result.exit_code, expected);
}

// --- statement-granular taint gate ----------------------------------------

/// A tuned read that is dead at every op site *by value flow*, but which
/// the PR-4 slicer keeps (its scope-level rule sees `s` reach the write
/// without noticing the overwrite kills the tuned value). The taint gate
/// must recover it for the fast path.
const char* kTaintRecoverableKernel = R"(
int main() {
  int s = tuned_stripe_count();
  s = 8;
  int f = h5fcreate("/scratch/recov.h5");
  int d = h5dcreate(f, "x", 8, 1024 * mpi_size());
  h5dwrite_all(d, s * 128);
  h5fclose(f);
  return 0;
}
)";

TEST(TaintGate, RecoversOverwrittenTunedRead) {
  obs::Counter& recovered =
      obs::MetricsRegistry::global().counter("replay.gate.recovered");
  const std::uint64_t before = recovered.value();
  const replay::InvarianceReport report =
      replay::analyze_invariance(minic::parse(kTaintRecoverableKernel));
  EXPECT_FALSE(report.dependent) << report.reason;
  EXPECT_FALSE(report.unanalyzable);
  // The def-use slicer rejected this program; taint admitted it.
  EXPECT_TRUE(report.slicer_dependent);
  EXPECT_EQ(recovered.value() - before, 1u);
}

TEST(TaintGate, ReportNamesTheTaintedSite) {
  const replay::InvarianceReport report =
      replay::analyze_invariance(minic::parse(kSettingsDependentKernel));
  EXPECT_TRUE(report.dependent);
  EXPECT_FALSE(report.unanalyzable);
  EXPECT_GE(report.tainted_sites, 1);
  EXPECT_NE(report.reason.find("tuned value reaches"), std::string::npos)
      << report.reason;
}

TEST(TaintGate, InvariantProgramReportsWhy) {
  const replay::InvarianceReport report =
      replay::analyze_invariance(minic::parse(wl::sources::vpic()));
  EXPECT_FALSE(report.dependent);
  EXPECT_FALSE(report.reason.empty());
}

TEST(TaintGate, UnanalyzableProgramReportsWhy) {
  // Recursion exceeds the abstract interpreter's soundness envelope: the
  // gate must fall back to dependent and say so, not silently degrade.
  const replay::InvarianceReport report =
      replay::analyze_invariance(minic::parse(R"(
int f(int n) {
  if (n > 0) { return f(n - 1); }
  return 0;
}
int main() {
  int x = f(tuned_cb_nodes());
  int h = h5fcreate("/scratch/r.h5");
  h5fclose(h);
  return x;
}
)"));
  EXPECT_TRUE(report.dependent);
  EXPECT_TRUE(report.unanalyzable);
  EXPECT_NE(report.reason.find("static analysis failed"), std::string::npos)
      << report.reason;
}

TEST(TaintGate, TaintedControlExitIsDependent) {
  // No op site is tainted, but an early return under tainted control can
  // skip later ops — the op *stream* still depends on the settings.
  const replay::InvarianceReport report =
      replay::analyze_invariance(minic::parse(R"(
int main() {
  int f = h5fcreate("/scratch/e.h5");
  if (tuned_cb_nodes() > 2) {
    h5fclose(f);
    return 1;
  }
  int d = h5dcreate(f, "x", 8, 1024);
  h5dwrite_all(d, 64);
  h5fclose(f);
  return 0;
}
)"));
  EXPECT_TRUE(report.dependent);
}

// --- objective-level fast path --------------------------------------------

/// kVerify re-runs interpretation alongside every replay and throws on
/// divergence, so a clean pass over varied configurations is a
/// self-checking differential test. The kOff twin confirms the fast path
/// changes nothing observable.
void expect_objective_modes_agree(
    const std::function<std::unique_ptr<tuner::Objective>(
        tuner::TestbedOptions)>& make,
    int num_configs) {
  auto verified = make(testbed(tuner::ReplayMode::kVerify));
  auto interpreted = make(testbed(tuner::ReplayMode::kOff));
  auto automatic = make(testbed(tuner::ReplayMode::kAuto));
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  for (const cfg::Configuration& config :
       varied_configs(space, num_configs)) {
    const tuner::Evaluation a = verified->evaluate(config);
    const tuner::Evaluation b = interpreted->evaluate(config);
    const tuner::Evaluation c = automatic->evaluate(config);
    EXPECT_TRUE(same_bits(a.perf_mbps, b.perf_mbps));
    EXPECT_TRUE(same_bits(a.eval_seconds, b.eval_seconds));
    EXPECT_TRUE(same_bits(a.perf_mbps, c.perf_mbps));
    EXPECT_TRUE(same_bits(a.eval_seconds, c.eval_seconds));
    EXPECT_TRUE(replay::bit_identical(a.detail, c.detail));
  }
}

TEST(ReplayObjective, KernelObjectiveModesAgree) {
  discovery::DiscoveryOptions options;
  options.loop_reduction = 0.01;
  options.path_switching = true;
  const discovery::KernelResult kernel =
      discovery::discover_io(wl::sources::macsio_vpic(), options);
  expect_objective_modes_agree(
      [&](tuner::TestbedOptions tb) {
        return tuner::make_kernel_objective(kernel.kernel, tb);
      },
      5);
}

TEST(ReplayObjective, WorkloadObjectiveModesAgree) {
  for (const char* name : kWorkloadNames) {
    SCOPED_TRACE(name);
    const std::shared_ptr<const wl::Workload> workload = small_workload(name);
    expect_objective_modes_agree(
        [&](tuner::TestbedOptions tb) {
          return tuner::make_workload_objective(workload, tb);
        },
        3);
  }
}

TEST(ReplayObjective, SettingsDependentKernelFallsBack) {
  // kVerify would throw if the replay path were (wrongly) engaged for a
  // kernel whose op stream changes with the settings; the static check
  // must keep it on the interpreted path, where the two stripe-count
  // extremes legitimately produce different results.
  const minic::Program program = minic::parse(kSettingsDependentKernel);
  ASSERT_TRUE(replay::settings_dependent(program));
  auto objective = tuner::make_kernel_objective(
      program, testbed(tuner::ReplayMode::kVerify));
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const std::size_t stripes = space.index_of("striping_factor");
  cfg::Configuration narrow = space.default_configuration();
  narrow.set_index(stripes, 0);
  cfg::Configuration wide = space.default_configuration();
  wide.set_index(stripes,
                 space.parameter(stripes).domain.size() - 1);
  ASSERT_LE(narrow.value("striping_factor"), 4u);
  ASSERT_GT(wide.value("striping_factor"), 4u);
  const tuner::Evaluation a = objective->evaluate(narrow);
  const tuner::Evaluation b = objective->evaluate(wide);
  // The wide configuration writes 4x the data; the op streams genuinely
  // differ, which is exactly why this kernel must not be replayed.
  EXPECT_NE(a.detail.counters.bytes_written, b.detail.counters.bytes_written);
}

TEST(ReplayObjective, AutoModeReplaysFromThirdEvaluationOn) {
  obs::Counter& replayed =
      obs::MetricsRegistry::global().counter("tuner.eval.replayed");
  const std::uint64_t before = replayed.value();
  const minic::Program program = minic::parse(wl::sources::vpic());
  auto objective =
      tuner::make_kernel_objective(program, testbed(tuner::ReplayMode::kAuto));
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const std::vector<cfg::Configuration> configs = varied_configs(space, 5);
  // Eval 1 records, eval 2 verifies; evals 3..5 must replay.
  for (const cfg::Configuration& config : configs) {
    objective->evaluate(config);
  }
  EXPECT_EQ(replayed.value() - before, 3u);
}

TEST(ReplayObjective, TaintRecoveredKernelReplaysBitIdentically) {
  // The acceptance case for the taint-widened gate: a kernel the PR-4
  // slicer classified settings-dependent (so it never replayed) is
  // proven invariant by taint and must now ride the fast path — with
  // kVerify re-interpreting alongside every replay and throwing on any
  // bit divergence.
  const minic::Program program = minic::parse(kTaintRecoverableKernel);
  ASSERT_FALSE(replay::settings_dependent(program));
  auto objective = tuner::make_kernel_objective(
      program, testbed(tuner::ReplayMode::kVerify));
  EXPECT_TRUE(objective->replay_gate().eligible)
      << objective->replay_gate().reason;
  expect_objective_modes_agree(
      [&](tuner::TestbedOptions tb) {
        return tuner::make_kernel_objective(program, tb);
      },
      5);
  // And the fast path genuinely engages: kAuto replays from eval 3 on.
  obs::Counter& replayed =
      obs::MetricsRegistry::global().counter("tuner.eval.replayed");
  const std::uint64_t before = replayed.value();
  auto auto_objective =
      tuner::make_kernel_objective(program, testbed(tuner::ReplayMode::kAuto));
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  for (const cfg::Configuration& config : varied_configs(space, 4)) {
    auto_objective->evaluate(config);
  }
  EXPECT_EQ(replayed.value() - before, 2u);
}

TEST(ReplayObjective, GateReasonExplainsIneligibility) {
  const minic::Program program = minic::parse(kSettingsDependentKernel);
  auto objective =
      tuner::make_kernel_objective(program, testbed(tuner::ReplayMode::kAuto));
  const tuner::ReplayGate gate = objective->replay_gate();
  EXPECT_FALSE(gate.eligible);
  EXPECT_NE(gate.reason.find("tuned value reaches"), std::string::npos)
      << gate.reason;
}

TEST(ReplayObjective, ReplayModeOffNeverRecords) {
  const minic::Program program = minic::parse(wl::sources::hacc());
  auto objective =
      tuner::make_kernel_objective(program, testbed(tuner::ReplayMode::kOff));
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const tuner::Evaluation a =
      objective->evaluate(space.default_configuration());
  const tuner::Evaluation b =
      objective->evaluate(space.default_configuration());
  EXPECT_TRUE(same_bits(a.perf_mbps, b.perf_mbps));
}

}  // namespace
}  // namespace tunio
