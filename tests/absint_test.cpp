// Tests for the abstract-interpretation layer: interval-domain edge
// cases (overflow saturation, widening, division by ranges containing
// zero), settings-taint propagation (through calls, returns, implicit
// control flow, dead/overwritten reads), structural trip-count bounding,
// and the static I/O cost model — including the ctest-gated differential
// oracle checking that predicted intervals contain interpreter-measured
// op counts and byte volumes on all five seed workloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/absint.hpp"
#include "analysis/cost_model.hpp"
#include "common/error.hpp"
#include "config/stack_settings.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"
#include "mpisim/mpisim.hpp"
#include "pfs/pfs.hpp"
#include "replay/hooks.hpp"
#include "replay/trace_stats.hpp"
#include "workloads/sources.hpp"

namespace tunio::analysis {
namespace {

constexpr unsigned kRanks = 8;

const Interval kTop = Interval::top();

// --- interval arithmetic ---------------------------------------------------

TEST(Interval, AddOverflowSaturatesToTop) {
  // Concrete int64 arithmetic wraps; [kMax-1, kMax] + [2, 2] can land at
  // kMin, so anything short of top would be unsound.
  const Interval a = Interval::range(Interval::kMax - 1, Interval::kMax);
  EXPECT_TRUE(abs_add(a, Interval::constant(2)).is_top());
  EXPECT_TRUE(abs_sub(Interval::constant(Interval::kMin),
                      Interval::constant(1)).is_top());
}

TEST(Interval, AddExactWhenRepresentable) {
  const Interval r = abs_add(Interval::range(2, 5), Interval::range(10, 20));
  EXPECT_EQ(r, Interval::range(12, 25));
}

TEST(Interval, MulTakesExtremeCandidates) {
  const Interval r = abs_mul(Interval::range(-3, 2), Interval::range(-5, 4));
  EXPECT_EQ(r, Interval::range(-12, 15));
}

TEST(Interval, MulOverflowSaturatesToTop) {
  const Interval big = Interval::constant(std::int64_t{1} << 40);
  EXPECT_TRUE(abs_mul(big, big).is_top());
}

TEST(Interval, DivByRangeContainingZeroIsTop) {
  EXPECT_TRUE(abs_div(Interval::range(10, 20), Interval::range(-1, 1))
                  .is_top());
  EXPECT_EQ(abs_div(Interval::range(10, 21), Interval::constant(2)),
            Interval::range(5, 10));
}

TEST(Interval, ModOfNonnegativeBelowModulus) {
  EXPECT_EQ(abs_mod(Interval::range(0, 6), Interval::constant(8)),
            Interval::range(0, 6));
  const Interval r = abs_mod(Interval::range(0, 100), Interval::constant(8));
  EXPECT_EQ(r, Interval::range(0, 7));
}

TEST(Interval, WideningJumpsMovedBoundsToInfinity) {
  const Interval prev = Interval::range(0, 10);
  EXPECT_EQ(prev.widen(Interval::range(0, 11)),
            Interval::range(0, Interval::kMax));
  EXPECT_EQ(prev.widen(Interval::range(-1, 10)),
            Interval::range(Interval::kMin, 10));
  EXPECT_EQ(prev.widen(Interval::range(0, 10)), prev);
}

TEST(Interval, CountArithmeticClampsAndSaturates) {
  // A possibly-negative size becomes a huge uint64 concretely, so the
  // clamp must widen to [0, kMax]; already-nonnegative intervals pass
  // through, and count products saturate at kMax rather than going top.
  EXPECT_EQ(count_clamp(Interval::range(-5, 9)),
            Interval::range(0, Interval::kMax));
  EXPECT_EQ(count_clamp(Interval::range(2, 9)), Interval::range(2, 9));
  EXPECT_EQ(count_mul(Interval::constant(Interval::kMax),
                      Interval::constant(2)),
            Interval::range(Interval::kMax, Interval::kMax));
  EXPECT_EQ(count_add(Interval::constant(3), Interval::constant(4)),
            Interval::constant(7));
}

// --- cost-model helpers ----------------------------------------------------

ProgramCost analyze(const std::string& source,
                    std::int64_t ranks_lo = 1,
                    std::int64_t ranks_hi = 1 << 20) {
  CostOptions options;
  options.absint.mpi_ranks = Interval::range(ranks_lo, ranks_hi);
  return predict_cost(minic::parse(source), options);
}

const SiteCost* site_for(const ProgramCost& cost, const std::string& callee) {
  for (const SiteCost& site : cost.sites) {
    if (site.callee == callee) return &site;
  }
  return nullptr;
}

// --- constant propagation & trip counts ------------------------------------

TEST(CostModel, StraightLineConstantVolume) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 1024);
      h5dwrite_all(d, 128);
      h5fclose(f);
      return 0;
    }
  )", 4, 4);
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  EXPECT_EQ(cost.write_ops, Interval::constant(1));
  // 128 elements x 8 bytes x 4 ranks.
  EXPECT_EQ(cost.bytes_written, Interval::constant(128 * 8 * 4));
  EXPECT_EQ(cost.file_opens, Interval::constant(1));
  EXPECT_EQ(cost.dataset_creates, Interval::constant(1));
  EXPECT_FALSE(cost.any_tainted_site());
  EXPECT_TRUE(cost.bounded());
}

TEST(CostModel, ForLoopTripCountIsExact) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 4, 4096);
      int i = 0;
      for (i = 0; i < 10; i = i + 1) {
        h5dwrite_all(d, 256);
      }
      h5fclose(f);
      return 0;
    }
  )", 2, 2);
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  EXPECT_EQ(cost.write_ops, Interval::constant(10));
  EXPECT_EQ(cost.bytes_written, Interval::constant(10 * 256 * 4 * 2));
}

TEST(CostModel, NestedLoopsMultiply) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 65536);
      int i = 0;
      int j = 0;
      for (i = 0; i < 3; i = i + 1) {
        for (j = 0; j < 5; j = j + 1) {
          h5dwrite_strided(d, 16, 64);
        }
      }
      h5fclose(f);
      return 0;
    }
  )", 1, 1);
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  EXPECT_EQ(cost.write_ops, Interval::constant(15));
  EXPECT_EQ(cost.bytes_written, Interval::constant(15 * 64 * 8));
}

TEST(CostModel, WhileLoopIsUnbounded) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 64);
      int i = 0;
      while (i < 10) {
        h5dwrite_all(d, 1);
        i = i + 1;
      }
      h5fclose(f);
      return 0;
    }
  )", 1, 1);
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  // No structural bound for while-loops: calls must still *contain* the
  // concrete count (10) but cannot be bounded above.
  EXPECT_TRUE(cost.write_ops.contains(10));
  EXPECT_FALSE(cost.write_ops.bounded_above());
  EXPECT_FALSE(cost.bounded());
}

TEST(CostModel, UnresolvedBranchWidensCallCount) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 64);
      if (mpi_size() > 4) {
        h5dwrite_all(d, 2);
      }
      h5fclose(f);
      return 0;
    }
  )");
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  EXPECT_EQ(cost.write_ops, Interval::range(0, 1));
}

TEST(CostModel, DecidableBranchStaysExact) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 64);
      int n = 3;
      if (n > 4) {
        h5dwrite_all(d, 2);
      } else {
        h5dwrite_all(d, 5);
      }
      h5fclose(f);
      return 0;
    }
  )", 1, 1);
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  EXPECT_EQ(cost.write_ops, Interval::constant(1));
  EXPECT_EQ(cost.bytes_written, Interval::constant(5 * 8));
}

TEST(CostModel, EarlyReturnFloorsLowerBounds) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 64);
      if (mpi_size() > 64) {
        return 1;
      }
      h5dwrite_all(d, 2);
      h5fclose(f);
      return 0;
    }
  )", 1, 1);
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  EXPECT_EQ(cost.write_ops, Interval::range(0, 1));
}

// --- taint -----------------------------------------------------------------

TEST(Taint, DirectFlowIntoWriteArgument) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int per = tuned_stripe_count() * 64;
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 65536);
      h5dwrite_all(d, per);
      h5fclose(f);
      return 0;
    }
  )");
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  const SiteCost* write = site_for(cost, "h5dwrite_all");
  ASSERT_NE(write, nullptr);
  EXPECT_TRUE(write->tainted);
  EXPECT_TRUE(cost.any_tainted_site());
}

TEST(Taint, DeadTunedReadIsClean) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int unused = tuned_cb_nodes();
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 65536);
      h5dwrite_all(d, 64);
      h5fclose(f);
      return 0;
    }
  )");
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  EXPECT_FALSE(cost.any_tainted_site());
  EXPECT_FALSE(cost.tainted_control_exit);
}

TEST(Taint, OverwrittenTunedReadIsClean) {
  // The PR-4 slicer marks this dependent (scope-level conservatism); the
  // statement-granular taint proves the tuned value never survives.
  const ProgramCost cost = analyze(R"(
    int main() {
      int s = tuned_stripe_count();
      s = 8;
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 65536);
      h5dwrite_all(d, s);
      h5fclose(f);
      return 0;
    }
  )");
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  EXPECT_FALSE(cost.any_tainted_site());
}

TEST(Taint, ImplicitFlowThroughCondition) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int per = 1024;
      if (tuned_stripe_count() > 4) {
        per = 4096;
      }
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 65536);
      h5dwrite_all(d, per);
      h5fclose(f);
      return 0;
    }
  )");
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  const SiteCost* write = site_for(cost, "h5dwrite_all");
  ASSERT_NE(write, nullptr);
  EXPECT_TRUE(write->tainted) << "per assigned under tainted control";
}

TEST(Taint, OpUnderTaintedControlIsTainted) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 65536);
      if (tuned_cb_nodes() > 2) {
        h5dwrite_all(d, 64);
      }
      h5fclose(f);
      return 0;
    }
  )");
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  const SiteCost* write = site_for(cost, "h5dwrite_all");
  ASSERT_NE(write, nullptr);
  EXPECT_TRUE(write->tainted);
}

TEST(Taint, FlowsThroughFunctionCallAndReturn) {
  const ProgramCost cost = analyze(R"(
    int pick(int a) {
      return a + 1;
    }
    int main() {
      int per = pick(tuned_stripe_size_kib());
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 65536);
      h5dwrite_all(d, per);
      h5fclose(f);
      return 0;
    }
  )");
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  const SiteCost* write = site_for(cost, "h5dwrite_all");
  ASSERT_NE(write, nullptr);
  EXPECT_TRUE(write->tainted);
}

TEST(Taint, CleanArgumentThroughFunctionStaysClean) {
  const ProgramCost cost = analyze(R"(
    int pick(int a) {
      return a + 1;
    }
    int main() {
      int dead = tuned_stripe_count();
      int per = pick(63);
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 65536);
      h5dwrite_all(d, per);
      h5fclose(f);
      return 0;
    }
  )", 2, 2);
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  const SiteCost* write = site_for(cost, "h5dwrite_all");
  ASSERT_NE(write, nullptr);
  EXPECT_FALSE(write->tainted);
  // Constant propagation through the call: 63 + 1 = 64 elements x 8 B x 2.
  EXPECT_EQ(cost.bytes_written, Interval::constant(64 * 8 * 2));
}

TEST(Taint, TaintedControlReturnSetsExitFlag) {
  const ProgramCost cost = analyze(R"(
    int main() {
      if (tuned_cb_nodes() > 2) {
        return 1;
      }
      return 0;
    }
  )");
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  EXPECT_TRUE(cost.tainted_control_exit);
}

TEST(Taint, ValueTaintedReturnDoesNotSetExitFlag) {
  const ProgramCost cost = analyze(R"(
    int main() {
      return tuned_cb_nodes();
    }
  )");
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  EXPECT_FALSE(cost.tainted_control_exit);
}

// --- limits ----------------------------------------------------------------

TEST(Limits, RecursionIsUnanalyzable) {
  const ProgramCost cost = analyze(R"(
    int f(int n) {
      if (n > 0) {
        return f(n - 1);
      }
      return 0;
    }
    int main() {
      return f(10);
    }
  )");
  EXPECT_FALSE(cost.analyzable);
  EXPECT_FALSE(cost.failure.empty());
}

TEST(Limits, NoMainIsUnanalyzable) {
  const ProgramCost cost = analyze("int helper() { return 0; }");
  EXPECT_FALSE(cost.analyzable);
}

// --- differential oracle against the interpreter ---------------------------

replay::AppIoCounts measured(const minic::Program& program) {
  replay::Recorder recorder;
  {
    mpisim::MpiSim mpi(kRanks);
    pfs::PfsSimulator fs;
    replay::RecordScope scope(recorder);
    interp::execute(program, mpi, fs, cfg::default_settings());
  }
  EXPECT_TRUE(recorder.valid()) << recorder.error();
  return replay::app_io_counts(recorder.take());
}

void expect_contains(const Interval& predicted, std::uint64_t got,
                     const char* what) {
  const auto v = static_cast<std::int64_t>(got);
  EXPECT_TRUE(predicted.contains(v))
      << what << ": measured " << got << " outside predicted "
      << predicted.str();
}

void expect_cost_contains_measurement(const std::string& source) {
  const minic::Program program = minic::parse(source);
  CostOptions options;
  options.absint.mpi_ranks = Interval::constant(kRanks);
  const ProgramCost cost = predict_cost(program, options);
  ASSERT_TRUE(cost.analyzable) << cost.failure;

  const replay::AppIoCounts got = measured(program);
  expect_contains(cost.write_ops, got.write_ops, "write ops");
  expect_contains(cost.read_ops, got.read_ops, "read ops");
  expect_contains(cost.bytes_written, got.bytes_written, "bytes written");
  expect_contains(cost.bytes_read, got.bytes_read, "bytes read");
  expect_contains(cost.file_opens, got.file_opens, "file opens");
  expect_contains(cost.dataset_creates, got.dataset_creates,
                  "dataset creates");
}

TEST(DifferentialOracle, Vpic) {
  expect_cost_contains_measurement(wl::sources::vpic());
}

TEST(DifferentialOracle, Flash) {
  expect_cost_contains_measurement(wl::sources::flash());
}

TEST(DifferentialOracle, Hacc) {
  expect_cost_contains_measurement(wl::sources::hacc());
}

TEST(DifferentialOracle, MacsioVpic) {
  expect_cost_contains_measurement(wl::sources::macsio_vpic());
}

TEST(DifferentialOracle, Bdcats) {
  expect_cost_contains_measurement(wl::sources::bdcats());
}

// The seeds' loops are structurally bounded for-loops, so the model
// should produce *finite* transfer predictions, not just sound ones.
TEST(DifferentialOracle, SeedPredictionsAreBounded) {
  for (const char* name :
       {"VPIC-IO", "FLASH-IO", "HACC-IO", "MACSio", "BD-CATS"}) {
    const auto source = wl::sources::source_for(name);
    ASSERT_TRUE(source.has_value()) << name;
    CostOptions options;
    options.absint.mpi_ranks = Interval::constant(kRanks);
    const ProgramCost cost = predict_cost(minic::parse(*source), options);
    ASSERT_TRUE(cost.analyzable) << name << ": " << cost.failure;
    EXPECT_TRUE(cost.bounded()) << name;
    EXPECT_TRUE(cost.bytes_written.bounded_above()) << name;
  }
}

// --- static impact pre-ranking ---------------------------------------------

TEST(StaticImpact, LargeContiguousWritesFavorStriping) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 16777216);
      h5dwrite_all(d, 1048576);
      h5fclose(f);
      return 0;
    }
  )", 4, 4);
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  const auto impact = static_impact(cost);
  ASSERT_FALSE(impact.empty());
  EXPECT_EQ(impact.front().first, "striping_factor");
  EXPECT_DOUBLE_EQ(impact.front().second, 1.0);
}

TEST(StaticImpact, SmallRepeatedWritesFavorCollectiveBuffering) {
  const ProgramCost cost = analyze(R"(
    int main() {
      int f = h5fcreate("/scratch/a.h5");
      int d = h5dcreate(f, "x", 8, 65536);
      int i = 0;
      for (i = 0; i < 100; i = i + 1) {
        h5dwrite_all(d, 16);
      }
      h5fclose(f);
      return 0;
    }
  )", 4, 4);
  ASSERT_TRUE(cost.analyzable) << cost.failure;
  const auto impact = static_impact(cost);
  ASSERT_FALSE(impact.empty());
  EXPECT_EQ(impact.front().first, "cb_buffer_size");
}

TEST(StaticImpact, UnanalyzableProgramHasNoRanking) {
  ProgramCost cost;
  cost.analyzable = false;
  EXPECT_TRUE(static_impact(cost).empty());
}

}  // namespace
}  // namespace tunio::analysis
