// Tests for the mini-C interpreter: language semantics, I/O builtins
// against the simulated stack, loop reduction bookkeeping, error traps.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "config/stack_settings.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"

namespace tunio::interp {
namespace {

InterpResult run(const std::string& source,
                 unsigned ranks = 4,
                 const cfg::StackSettings& settings = cfg::default_settings()) {
  mpisim::MpiSim mpi(ranks);
  pfs::PfsSimulator fs;
  return execute(minic::parse(source), mpi, fs, settings, {});
}

TEST(Interp, ArithmeticAndReturn) {
  EXPECT_EQ(run("int main() { return 2 + 3 * 4; }").exit_code, 14);
  EXPECT_EQ(run("int main() { return (2 + 3) * 4; }").exit_code, 20);
  EXPECT_EQ(run("int main() { return 17 % 5; }").exit_code, 2);
  EXPECT_EQ(run("int main() { return 17 / 5; }").exit_code, 3);
  EXPECT_EQ(run("int main() { return -3 + 5; }").exit_code, 2);
  EXPECT_EQ(run("int main() { double x = 2.5; return x * 2.0; }").exit_code,
            5);
}

TEST(Interp, ComparisonsAndLogic) {
  EXPECT_EQ(run("int main() { return 3 < 4; }").exit_code, 1);
  EXPECT_EQ(run("int main() { return 3 >= 4; }").exit_code, 0);
  EXPECT_EQ(run("int main() { return 1 && 0; }").exit_code, 0);
  EXPECT_EQ(run("int main() { return 0 || 2; }").exit_code, 1);
  EXPECT_EQ(run("int main() { return !0; }").exit_code, 1);
  // Short-circuit: the divide-by-zero on the right is never evaluated.
  EXPECT_EQ(run("int main() { int z = 0; return 0 && 1 / z; }").exit_code, 0);
}

TEST(Interp, ControlFlow) {
  EXPECT_EQ(run(R"(
    int main()
    {
      int sum = 0;
      for (int i = 0; i < 10; i = i + 1)
      {
        sum = sum + i;
      }
      return sum;
    })").exit_code,
            45);
  EXPECT_EQ(run(R"(
    int main()
    {
      int n = 100;
      int steps = 0;
      while (n > 1)
      {
        n = n / 2;
        steps = steps + 1;
      }
      return steps;
    })").exit_code,
            6);
  EXPECT_EQ(run(R"(
    int main()
    {
      int x = 7;
      if (x % 2 == 0)
      {
        return 0;
      }
      else
      {
        return 1;
      }
    })").exit_code,
            1);
}

TEST(Interp, FunctionsAndRecursionGuard) {
  EXPECT_EQ(run(R"(
    int fib(int n)
    {
      if (n < 2)
      {
        return n;
      }
      return fib(n - 1) + fib(n - 2);
    }
    int main()
    {
      return fib(10);
    })").exit_code,
            55);
  EXPECT_THROW(run(R"(
    int loop(int n)
    {
      return loop(n + 1);
    }
    int main()
    {
      return loop(0);
    })"),
               SourceError);
}

TEST(Interp, StringConcatenation) {
  // Paths are assembled with '+', mixing strings and integers.
  const InterpResult result = run(R"(
    int main()
    {
      string base = "/scratch/file_";
      int f = h5fcreate(base + 3 + ".h5");
      h5fclose(f);
      return 0;
    })");
  EXPECT_EQ(result.exit_code, 0);
}

TEST(Interp, ScopingShadowsAndExpires) {
  EXPECT_EQ(run(R"(
    int main()
    {
      int x = 1;
      if (x == 1)
      {
        int y = 10;
        x = x + y;
      }
      return x;
    })").exit_code,
            11);
  // A block-local variable is gone after the block.
  EXPECT_THROW(run(R"(
    int main()
    {
      if (1 == 1)
      {
        int inner = 5;
      }
      return inner;
    })"),
               SourceError);
}

TEST(Interp, RuntimeErrors) {
  EXPECT_THROW(run("int main() { return 1 / 0; }"), SourceError);
  EXPECT_THROW(run("int main() { return 1 % 0; }"), SourceError);
  EXPECT_THROW(run("int main() { return ghost; }"), SourceError);
  EXPECT_THROW(run("int main() { ghost = 1; return 0; }"), SourceError);
  EXPECT_THROW(run("int main() { return unknown_fn(); }"), SourceError);
  EXPECT_THROW(run("int main() { int x = 1; int x = 2; return x; }"),
               SourceError);
  EXPECT_THROW(run("int main() { h5fclose(42); return 0; }"), SourceError);
  EXPECT_THROW(run("int main() { compute(); return 0; }"), SourceError);
  EXPECT_THROW(run("int notmain() { return 0; }"), SourceError);
}

TEST(Interp, LoopIterationGuard) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  InterpOptions options;
  options.max_loop_iterations = 100;
  EXPECT_THROW(execute(minic::parse(R"(
    int main()
    {
      int x = 0;
      while (1 == 1)
      {
        x = x + 1;
      }
      return x;
    })"),
                       mpi, fs, cfg::default_settings(), options),
               SourceError);
}

TEST(Interp, IoBuiltinsDriveTheStack) {
  mpisim::MpiSim mpi(8);
  pfs::PfsSimulator fs;
  const InterpResult result = execute(minic::parse(R"(
    int main()
    {
      int np = 4096;
      int f = h5fcreate("/scratch/out.h5");
      int ds = h5dcreate(f, "x", 4, np * mpi_size());
      h5dwrite_all(ds, np);
      h5dread_all(ds, np);
      h5dclose(ds);
      h5fclose(f);
      return 0;
    })"),
                                      mpi, fs, cfg::default_settings(), {});
  EXPECT_EQ(result.exit_code, 0);
  const Bytes payload = 8u * 4096u * 4u;
  EXPECT_GE(result.perf.counters.bytes_written, payload);
  // Metadata adds a little, not a lot.
  EXPECT_LE(result.perf.counters.bytes_written, payload + 64 * KiB);
  EXPECT_GT(result.perf.counters.bytes_read, 0u);
  EXPECT_GT(result.perf.counters.write_time, 0.0);
  EXPECT_GT(result.perf.counters.read_time, 0.0);
  EXPECT_GT(result.perf.perf_mbps, 0.0);
}

TEST(Interp, MpiBuiltins) {
  EXPECT_EQ(run("int main() { return mpi_size(); }", 16).exit_code, 16);
  const InterpResult result = run(R"(
    int main()
    {
      compute(1.0);
      mpi_barrier();
      return 0;
    })");
  EXPECT_GT(result.sim_seconds, 0.9);
}

TEST(Interp, ChunkingBuiltinAffectsLayout) {
  // With chunking set, a partial overwrite triggers chunk-cache traffic
  // (observable as a higher write count than the contiguous run).
  auto write_ops = [](bool chunked) {
    const std::string chunk_stmt = chunked ? "h5set_chunking(1024);" : "";
    mpisim::MpiSim mpi(4);
    pfs::PfsSimulator fs;
    const InterpResult r = execute(minic::parse(R"(
      int main()
      {
        int f = h5fcreate("/scratch/c.h5");
        )" + chunk_stmt + R"(
        int ds = h5dcreate(f, "x", 4, 1048576);
        h5dwrite_all(ds, 262144);
        h5fclose(f);
        return 0;
      })"),
                                   mpi, fs, cfg::default_settings(), {});
    return r.perf.counters.write_ops;
  };
  EXPECT_NE(write_ops(true), write_ops(false));
}

TEST(Interp, MemoryPathsAvoidOsts) {
  mpisim::MpiSim mpi(4);
  pfs::PfsSimulator fs;
  const InterpResult result = execute(minic::parse(R"(
    int main()
    {
      int f = h5fcreate("/shm/scratch/fast.h5");
      int ds = h5dcreate(f, "x", 4, 1048576);
      h5dwrite_all(ds, 262144);
      h5fclose(f);
      return 0;
    })"),
                                      mpi, fs, cfg::default_settings(), {});
  EXPECT_EQ(result.exit_code, 0);
  for (const SimSeconds busy : fs.ost_busy_times()) {
    EXPECT_DOUBLE_EQ(busy, 0.0);
  }
}

TEST(Interp, ReducedItersRecordsExtrapolation) {
  const InterpResult result = run(R"(
    int main()
    {
      int f = h5fcreate("/scratch/r.h5");
      int ds = h5dcreate(f, "x", 4, 1048576);
      for (int i = 0; i < reduced_iters(20, 10); i = i + 1)
      {
        h5dwrite_all(ds, 1024);
      }
      h5fclose(f);
      return 0;
    })");
  // 20/10 = 2 iterations ran; extrapolation factor = 10.
  EXPECT_DOUBLE_EQ(result.extrapolation, 10.0);
  EXPECT_NEAR(result.predicted_bytes_written,
              static_cast<double>(result.perf.counters.bytes_written) * 10.0,
              1e-6);
}

TEST(Interp, ReducedItersNeverBelowOne) {
  EXPECT_EQ(run("int main() { return reduced_iters(3, 100); }").exit_code, 1);
  EXPECT_EQ(run("int main() { return reduced_iters(300, 100); }").exit_code,
            3);
}

TEST(Interp, MinMaxBuiltins) {
  EXPECT_EQ(run("int main() { return min(3, 7); }").exit_code, 3);
  EXPECT_EQ(run("int main() { return max(3, 7); }").exit_code, 7);
}

TEST(Interp, LeakedFilesAreClosedAtExit) {
  mpisim::MpiSim mpi(4);
  pfs::PfsSimulator fs;
  const InterpResult result = execute(minic::parse(R"(
    int main()
    {
      int f = h5fcreate("/scratch/leak.h5");
      int ds = h5dcreate(f, "x", 4, 1048576);
      h5dwrite_all(ds, 262144);
      return 0;
    })"),
                                      mpi, fs, cfg::default_settings(), {});
  // The implicit close flushed the raw data to the PFS.
  EXPECT_GE(result.perf.counters.bytes_written, 4u * 262144u * 4u);
}

TEST(Interp, LogWritesCountAsNonHdf5Io) {
  const InterpResult result = run(R"(
    int main()
    {
      for (int i = 0; i < 10; i = i + 1)
      {
        fprintf_log("/scratch/x.log", 128);
      }
      return 0;
    })");
  EXPECT_EQ(result.perf.counters.write_ops, 10u);
  EXPECT_EQ(result.perf.counters.bytes_written, 1280u);
}

}  // namespace
}  // namespace tunio::interp
