// Tests for the Lustre-like PFS simulator: stripe layout math, cost-model
// behaviour, contention, tiers, and counters.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pfs/layout.hpp"
#include "pfs/pfs.hpp"

namespace tunio::pfs {
namespace {

TEST(StripeLayout, SingleStripeIsIdentity) {
  StripeLayout layout(1 * MiB, 1, 0, 8);
  const auto pieces = layout.split(0, 10 * MiB);
  ASSERT_EQ(pieces.size(), 1u);  // coalesced: all on the same OST
  EXPECT_EQ(pieces[0].ost, 0u);
  EXPECT_EQ(pieces[0].object_offset, 0u);
  EXPECT_EQ(pieces[0].length, 10 * MiB);
}

TEST(StripeLayout, RoundRobinAcrossOsts) {
  StripeLayout layout(1 * MiB, 4, 0, 8);
  EXPECT_EQ(layout.ost_for(0), 0u);
  EXPECT_EQ(layout.ost_for(1 * MiB), 1u);
  EXPECT_EQ(layout.ost_for(3 * MiB), 3u);
  EXPECT_EQ(layout.ost_for(4 * MiB), 0u);  // wraps
}

TEST(StripeLayout, OstOffsetShiftsPlacement) {
  StripeLayout layout(1 * MiB, 4, 6, 8);
  EXPECT_EQ(layout.ost_for(0), 6u);
  EXPECT_EQ(layout.ost_for(1 * MiB), 7u);
  EXPECT_EQ(layout.ost_for(2 * MiB), 0u);  // wraps the pool
}

TEST(StripeLayout, ObjectOffsets) {
  StripeLayout layout(1 * MiB, 2, 0, 8);
  // File offset 2 MiB = second stripe round on OST 0 -> object offset 1MiB.
  EXPECT_EQ(layout.object_offset_for(2 * MiB), 1 * MiB);
  EXPECT_EQ(layout.object_offset_for(2 * MiB + 123), 1 * MiB + 123);
}

TEST(StripeLayout, StripeCountClampedToPool) {
  StripeLayout layout(1 * MiB, 64, 0, 4);
  EXPECT_EQ(layout.stripe_count(), 4u);
}

TEST(StripeLayout, RejectsBadArgs) {
  EXPECT_THROW(StripeLayout(0, 1, 0, 4), Error);
  EXPECT_THROW(StripeLayout(1 * MiB, 0, 0, 4), Error);
  EXPECT_THROW(StripeLayout(1 * MiB, 1, 0, 0), Error);
}

/// Property: splitting any extent yields pieces that exactly tile it.
class SplitProperty
    : public ::testing::TestWithParam<std::tuple<Bytes, unsigned>> {};

TEST_P(SplitProperty, PiecesTileTheExtent) {
  const auto [stripe_size, stripe_count] = GetParam();
  StripeLayout layout(stripe_size, stripe_count, 1, 16);
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const Bytes offset = static_cast<Bytes>(rng.uniform_int(0, 64 * MiB));
    const Bytes length = static_cast<Bytes>(rng.uniform_int(1, 16 * MiB));
    const auto pieces = layout.split(offset, length);
    ASSERT_FALSE(pieces.empty());
    Bytes covered = 0;
    Bytes cursor = offset;
    for (const auto& piece : pieces) {
      EXPECT_EQ(piece.file_offset, cursor);
      EXPECT_EQ(piece.ost, layout.ost_for(piece.file_offset));
      EXPECT_EQ(piece.object_offset,
                layout.object_offset_for(piece.file_offset));
      covered += piece.length;
      cursor += piece.length;
    }
    EXPECT_EQ(covered, length);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, SplitProperty,
    ::testing::Values(std::make_tuple(Bytes{64 * KiB}, 1u),
                      std::make_tuple(Bytes{1 * MiB}, 2u),
                      std::make_tuple(Bytes{1 * MiB}, 8u),
                      std::make_tuple(Bytes{4 * MiB}, 16u),
                      std::make_tuple(Bytes{16 * MiB}, 3u)));

TEST(PfsSimulator, CreateOpenRemove) {
  PfsSimulator fs;
  EXPECT_FALSE(fs.exists("/a"));
  fs.create("/a", 0.0);
  EXPECT_TRUE(fs.exists("/a"));
  EXPECT_NO_THROW(fs.open("/a", 0.0));
  fs.remove("/a", 0.0);
  EXPECT_FALSE(fs.exists("/a"));
  EXPECT_THROW(fs.open("/a", 0.0), Error);
}

TEST(PfsSimulator, WriteAdvancesTimeAndSize) {
  PfsSimulator fs;
  fs.create("/f", 0.0);
  const SimSeconds done = fs.write("/f", 1.0, 0, 8 * MiB);
  EXPECT_GT(done, 1.0);
  EXPECT_EQ(fs.file_size("/f"), 8 * MiB);
  EXPECT_EQ(fs.counters().writes, 1u);
  EXPECT_EQ(fs.counters().bytes_written, 8 * MiB);
}

TEST(PfsSimulator, WiderStripingIsFasterForLargeWrites) {
  PfsProfile profile;
  PfsSimulator fs(profile);
  CreateOptions narrow;
  narrow.stripe_count = 1;
  CreateOptions wide;
  wide.stripe_count = 16;
  fs.create("/narrow", 0.0, narrow);
  const SimSeconds narrow_done = fs.write("/narrow", 0.0, 0, 256 * MiB);
  fs.quiesce();
  fs.create("/wide", 0.0, wide);
  const SimSeconds wide_done = fs.write("/wide", 0.0, 0, 256 * MiB);
  EXPECT_LT(wide_done, narrow_done);
}

TEST(PfsSimulator, UnalignedWritePaysRmw) {
  PfsSimulator fs;
  fs.create("/aligned", 0.0);
  fs.create("/unaligned", 0.0);
  // Aligned full-block write: no RMW bytes.
  fs.write("/aligned", 0.0, 0, 1 * MiB);
  EXPECT_EQ(fs.counters().rmw_bytes, 0u);
  // A non-sequential partial-block write must pre-read.
  fs.write("/unaligned", 0.0, 512 * KiB, 4 * KiB);
  EXPECT_GT(fs.counters().rmw_bytes, 0u);
}

TEST(PfsSimulator, SequentialAppendsSkipRmw) {
  PfsSimulator fs;
  fs.create("/log", 0.0);
  SimSeconds t = fs.write("/log", 0.0, 0, 512);
  const Bytes before = fs.counters().rmw_bytes;
  for (int i = 1; i < 50; ++i) {
    t = fs.write("/log", t, i * 512ull, 512);
  }
  // Streaming appends are absorbed by the page-cache model: no pre-reads.
  EXPECT_EQ(fs.counters().rmw_bytes, before);
}

TEST(PfsSimulator, ContentionSerializesOnOneOst) {
  PfsProfile profile;
  PfsSimulator fs(profile);
  CreateOptions one;
  one.stripe_count = 1;
  fs.create("/hot", 0.0, one);
  // Two writes "issued at the same time" to the same OST must serialize.
  const SimSeconds first = fs.write("/hot", 0.0, 0, 64 * MiB);
  const SimSeconds second = fs.write("/hot", 0.0, 64 * MiB, 64 * MiB);
  EXPECT_GT(second, first);
}

TEST(PfsSimulator, MemoryTierBypassesOsts) {
  PfsSimulator fs;
  CreateOptions mem;
  mem.tier = Tier::kMemory;
  fs.create("/shm/f", 0.0, mem);
  EXPECT_EQ(fs.file_tier("/shm/f"), Tier::kMemory);
  const SimSeconds done = fs.write("/shm/f", 0.0, 0, 64 * MiB);
  // Memory tier leaves OST timelines untouched.
  for (const SimSeconds busy : fs.ost_busy_times()) {
    EXPECT_DOUBLE_EQ(busy, 0.0);
  }
  // And it is much faster than a single-stripe disk write of this size.
  CreateOptions one_stripe;
  one_stripe.stripe_count = 1;
  fs.create("/disk/f", 0.0, one_stripe);
  const SimSeconds disk_done = fs.write("/disk/f", 0.0, 0, 64 * MiB);
  EXPECT_LT(done, disk_done);
}

TEST(PfsSimulator, ReadCountersAndMissingFile) {
  PfsSimulator fs;
  fs.create("/r", 0.0);
  fs.write("/r", 0.0, 0, 1 * MiB);
  fs.read("/r", 10.0, 0, 1 * MiB);
  EXPECT_EQ(fs.counters().reads, 1u);
  EXPECT_EQ(fs.counters().bytes_read, 1 * MiB);
  EXPECT_THROW(fs.read("/missing", 0.0, 0, 1), Error);
}

TEST(PfsSimulator, MetadataOpsContend) {
  PfsSimulator fs;
  const SimSeconds first = fs.metadata_op(0.0);
  const SimSeconds second = fs.metadata_op(0.0);
  EXPECT_GT(second, first);  // serialized on the MDS
  EXPECT_EQ(fs.counters().metadata_ops, 2u);
}

TEST(PfsSimulator, ResetClearsEverything) {
  PfsSimulator fs;
  fs.create("/x", 0.0);
  fs.write("/x", 0.0, 0, 1 * MiB);
  fs.reset();
  EXPECT_FALSE(fs.exists("/x"));
  EXPECT_EQ(fs.counters().writes, 0u);
  EXPECT_EQ(fs.counters().metadata_ops, 0u);
}

TEST(PfsSimulator, QuiesceKeepsFilesAndCounters) {
  PfsSimulator fs;
  fs.create("/x", 0.0);
  fs.write("/x", 0.0, 0, 1 * MiB);
  const auto writes_before = fs.counters().writes;
  fs.quiesce();
  EXPECT_TRUE(fs.exists("/x"));
  EXPECT_EQ(fs.counters().writes, writes_before);
  // Timelines rewound: a new op starts from t=0 contention-free.
  const SimSeconds done = fs.metadata_op(0.0);
  EXPECT_NEAR(done, fs.profile().mds.op_latency, 1e-12);
}

TEST(SizeHistogram, BucketsAndLabels) {
  SizeHistogram h;
  h.record(100);            // <4K
  h.record(8 * KiB);        // 4K-64K
  h.record(100 * KiB);      // 64K-1M
  h.record(2 * MiB);        // 1M-16M
  h.record(64 * MiB);       // >=16M
  h.record(64 * MiB);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.counts[4], 2u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_STREQ(SizeHistogram::label(0), "<4K");
  EXPECT_STREQ(SizeHistogram::label(4), ">=16M");
  SizeHistogram other = h;
  h -= other;
  EXPECT_EQ(h.total(), 0u);
}

TEST(PfsSimulator, CountersRecordAccessSizes) {
  PfsSimulator fs;
  fs.create("/h", 0.0);
  fs.write("/h", 0.0, 0, 512);
  fs.write("/h", 0.0, 512, 8 * MiB);
  fs.read("/h", 1.0, 0, 32 * KiB);
  EXPECT_EQ(fs.counters().write_sizes.counts[0], 1u);
  EXPECT_EQ(fs.counters().write_sizes.counts[3], 1u);
  EXPECT_EQ(fs.counters().read_sizes.counts[1], 1u);
  EXPECT_EQ(fs.counters().write_sizes.total(), 2u);
}

TEST(PfsSimulator, RoundRobinOstPlacementSpreadsFiles) {
  PfsSimulator fs;
  CreateOptions one;
  one.stripe_count = 1;
  fs.create("/a", 0.0, one);
  fs.create("/b", 0.0, one);
  EXPECT_NE(fs.file_layout("/a").ost_offset(),
            fs.file_layout("/b").ost_offset());
}

/// Property: time to write N bytes is monotone non-decreasing in N.
class PfsMonotoneProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PfsMonotoneProperty, WriteTimeMonotoneInSize) {
  const unsigned stripes = GetParam();
  SimSeconds previous = 0.0;
  for (Bytes size = 1 * MiB; size <= 64 * MiB; size *= 2) {
    PfsSimulator fs;
    CreateOptions opts;
    opts.stripe_count = stripes;
    fs.create("/m", 0.0, opts);
    const SimSeconds done = fs.write("/m", 0.0, 0, size);
    EXPECT_GE(done, previous);
    previous = done;
  }
}

INSTANTIATE_TEST_SUITE_P(StripeCounts, PfsMonotoneProperty,
                         ::testing::Values(1u, 2u, 8u, 32u, 64u));

TEST(StripeLayout, VisitorMatchesSplit) {
  StripeLayout layout(1 * MiB, 4, 2, 8);
  const Bytes offset = 512 * KiB;
  const Bytes length = 13 * MiB + 777;
  const auto pieces = layout.split(offset, length);
  std::vector<StripeExtent> visited;
  layout.for_each_extent(offset, length, [&](const StripeExtent& piece) {
    visited.push_back(piece);
  });
  ASSERT_EQ(visited.size(), pieces.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    EXPECT_EQ(visited[i].ost, pieces[i].ost);
    EXPECT_EQ(visited[i].object_offset, pieces[i].object_offset);
    EXPECT_EQ(visited[i].file_offset, pieces[i].file_offset);
    EXPECT_EQ(visited[i].length, pieces[i].length);
  }
}

TEST(PfsSimulator, HandleApiMatchesPathApi) {
  PfsSimulator by_path;
  PfsSimulator by_handle;
  by_path.create("/h", 0.0);
  const OpenResult opened = by_handle.create_file("/h", 0.0);
  for (int i = 0; i < 4; ++i) {
    const Bytes offset = static_cast<Bytes>(i) * 3 * MiB;
    const SimSeconds a = by_path.write("/h", 1.0 + i, offset, 3 * MiB);
    const SimSeconds b = by_handle.write(opened.handle, 1.0 + i, offset, 3 * MiB);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(by_path.read("/h", 10.0, 1 * MiB, 4 * MiB),
            by_handle.read(opened.handle, 10.0, 1 * MiB, 4 * MiB));
  EXPECT_EQ(by_path.file_size("/h"), by_handle.file_size(opened.handle));
  EXPECT_EQ(by_path.counters().bytes_written,
            by_handle.counters().bytes_written);
}

TEST(PfsSimulator, FindFileChargesNoMetadataOp) {
  PfsSimulator fs;
  EXPECT_FALSE(fs.find_file("/q").has_value());
  const OpenResult opened = fs.create_file("/q", 0.0);
  const std::uint64_t metadata_ops = fs.counters().metadata_ops;
  const std::optional<FileHandle> found = fs.find_file("/q");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, opened.handle);
  EXPECT_EQ(fs.counters().metadata_ops, metadata_ops);
}

TEST(PfsSimulator, CreateOnExistingPathTruncates) {
  PfsSimulator fs;
  const OpenResult first = fs.create_file("/t", 0.0);
  fs.write(first.handle, 0.0, 0, 4 * MiB);
  EXPECT_EQ(fs.file_size("/t"), 4 * MiB);
  const OpenResult again = fs.create_file("/t", 1.0);
  EXPECT_EQ(again.handle, first.handle);  // slot reused
  EXPECT_EQ(fs.file_size("/t"), 0u);
}

TEST(PfsSimulator, RemovedFileStaysUsableThroughHandle) {
  // POSIX unlinked-descriptor semantics: remove() drops the name, not the
  // open file.
  PfsSimulator fs;
  const OpenResult opened = fs.create_file("/u", 0.0);
  fs.write(opened.handle, 0.0, 0, 1 * MiB);
  fs.remove("/u", 1.0);
  EXPECT_FALSE(fs.exists("/u"));
  EXPECT_NO_THROW(fs.write(opened.handle, 2.0, 1 * MiB, 1 * MiB));
  EXPECT_EQ(fs.file_size(opened.handle), 2 * MiB);
}

TEST(PfsSimulator, HandleSequentialDetectionSurvivesQuiesce) {
  // Two appends: the second is sequential and skips the RMW penalty. After
  // quiesce() the OST history is wiped, so the same append pays it again.
  PfsSimulator fs;
  CreateOptions opts;
  opts.stripe_count = 1;
  const OpenResult opened = fs.create_file("/s", 0.0, opts);
  const Bytes odd = 1 * MiB + 4096;  // not stripe-aligned at the tail
  fs.write(opened.handle, 0.0, 0, odd);
  const SimSeconds warm_start = 100.0;
  const SimSeconds warm = fs.write(opened.handle, warm_start, odd, odd);
  fs.quiesce();
  const SimSeconds cold = fs.write(opened.handle, warm_start, odd, odd);
  EXPECT_GT(cold, warm);
}

}  // namespace
}  // namespace tunio::pfs
