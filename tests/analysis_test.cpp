// Tests for the static I/O analysis layer: CFG construction, reaching
// definitions, def-use chains, the backward slicer, the anti-pattern
// linter (including exact line/column numbers), and the lint-hint path
// into Smart Configuration Generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/lint.hpp"
#include "analysis/slicer.hpp"
#include "common/error.hpp"
#include "config/space.hpp"
#include "core/smart_config.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "workloads/sources.hpp"

namespace tunio::analysis {
namespace {

minic::Program parse(const std::string& source) {
  return minic::parse(source);
}

const minic::Function& fn(const minic::Program& program,
                          const std::string& name) {
  const minic::Function* f = program.find(name);
  EXPECT_NE(f, nullptr) << "no function " << name;
  return *f;
}

// --- CFG -------------------------------------------------------------------

TEST(Cfg, StraightLineChain) {
  const minic::Program program = parse(R"(
    int main()
    {
      int a = 1;
      a = a + 1;
      return a;
    }
  )");
  const FunctionCfg cfg = build_cfg(fn(program, "main"));
  // entry, exit, decl, assign, return.
  EXPECT_EQ(cfg.num_nodes(), 5);
  // entry -> decl -> assign -> return -> exit; no fall-through past return.
  int node = FunctionCfg::kEntry;
  for (int hops = 0; hops < 3; ++hops) {
    ASSERT_EQ(cfg.successors(node).size(), 1u);
    node = cfg.successors(node)[0];
  }
  ASSERT_EQ(cfg.successors(node).size(), 1u);
  EXPECT_EQ(cfg.successors(node)[0], FunctionCfg::kExit);
}

TEST(Cfg, WhileLoopHasBackEdge) {
  const minic::Program program = parse(R"(
    int main()
    {
      int n = 4;
      while (n > 0)
      {
        n = n - 1;
      }
      return n;
    }
  )");
  const FunctionCfg cfg = build_cfg(fn(program, "main"));
  // Find the while node (it owns the condition).
  int while_node = -1;
  for (int node = 0; node < cfg.num_nodes(); ++node) {
    const minic::Stmt* stmt = cfg.stmt_of(node);
    if (stmt != nullptr && stmt->kind == minic::StmtKind::kWhile) {
      while_node = node;
    }
  }
  ASSERT_GE(while_node, 0);
  // Two predecessors: the decl before the loop and the body assignment.
  EXPECT_EQ(cfg.predecessors(while_node).size(), 2u);
  // Two successors: the loop body and the statement after the loop.
  EXPECT_EQ(cfg.successors(while_node).size(), 2u);
}

TEST(Cfg, ForLoopWiresInitCondUpdate) {
  const minic::Program program = parse(R"(
    int main()
    {
      int sum = 0;
      for (int i = 0; i < 3; i = i + 1)
      {
        sum = sum + i;
      }
      return sum;
    }
  )");
  const FunctionCfg cfg = build_cfg(fn(program, "main"));
  int for_node = -1, init_node = -1, update_node = -1;
  for (int node = 0; node < cfg.num_nodes(); ++node) {
    const minic::Stmt* stmt = cfg.stmt_of(node);
    if (stmt == nullptr) continue;
    if (stmt->kind == minic::StmtKind::kFor) for_node = node;
    if (stmt->kind == minic::StmtKind::kDecl && stmt->name == "i") {
      init_node = node;
    }
    if (stmt->kind == minic::StmtKind::kAssign && stmt->name == "i") {
      update_node = node;
    }
  }
  ASSERT_GE(for_node, 0);
  ASSERT_GE(init_node, 0);
  ASSERT_GE(update_node, 0);
  // init -> cond; update -> cond (the back edge).
  const auto& init_succ = cfg.successors(init_node);
  ASSERT_EQ(init_succ.size(), 1u);
  EXPECT_EQ(init_succ[0], for_node);
  const auto& update_succ = cfg.successors(update_node);
  ASSERT_EQ(update_succ.size(), 1u);
  EXPECT_EQ(update_succ[0], for_node);
}

TEST(Cfg, IfWithoutElseFallsThrough) {
  const minic::Program program = parse(R"(
    int main()
    {
      int x = 0;
      if (x > 0)
      {
        x = 1;
      }
      return x;
    }
  )");
  const FunctionCfg cfg = build_cfg(fn(program, "main"));
  int if_node = -1, ret_node = -1;
  for (int node = 0; node < cfg.num_nodes(); ++node) {
    const minic::Stmt* stmt = cfg.stmt_of(node);
    if (stmt == nullptr) continue;
    if (stmt->kind == minic::StmtKind::kIf) if_node = node;
    if (stmt->kind == minic::StmtKind::kReturn) ret_node = node;
  }
  ASSERT_GE(if_node, 0);
  ASSERT_GE(ret_node, 0);
  // The return joins both paths: then-branch and the false edge.
  EXPECT_EQ(cfg.predecessors(ret_node).size(), 2u);
}

// --- reaching definitions & def-use ---------------------------------------

TEST(ReachingDefs, ReassignmentKillsEarlierDef) {
  const minic::Program program = parse(R"(
    int main()
    {
      int x = 1;
      x = 2;
      return x;
    }
  )");
  const minic::Function& main_fn = fn(program, "main");
  const FunctionCfg cfg = build_cfg(main_fn);
  const ReachingDefinitions rd(main_fn, cfg);
  int ret_node = -1;
  for (int node = 0; node < cfg.num_nodes(); ++node) {
    const minic::Stmt* stmt = cfg.stmt_of(node);
    if (stmt != nullptr && stmt->kind == minic::StmtKind::kReturn) {
      ret_node = node;
    }
  }
  ASSERT_GE(ret_node, 0);
  const std::vector<int> defs = rd.reaching(ret_node, "x");
  ASSERT_EQ(defs.size(), 1u);  // the decl is killed by the assignment
  const minic::Stmt* def_stmt =
      cfg.stmt_of(rd.definitions()[defs[0]].node);
  ASSERT_NE(def_stmt, nullptr);
  EXPECT_EQ(def_stmt->kind, minic::StmtKind::kAssign);
}

TEST(ReachingDefs, LoopBackEdgeMergesDefinitions) {
  const minic::Program program = parse(R"(
    int main()
    {
      int n = 4;
      while (n > 0)
      {
        n = n - 1;
      }
      return n;
    }
  )");
  const minic::Function& main_fn = fn(program, "main");
  const FunctionCfg cfg = build_cfg(main_fn);
  const ReachingDefinitions rd(main_fn, cfg);
  int while_node = -1;
  for (int node = 0; node < cfg.num_nodes(); ++node) {
    const minic::Stmt* stmt = cfg.stmt_of(node);
    if (stmt != nullptr && stmt->kind == minic::StmtKind::kWhile) {
      while_node = node;
    }
  }
  ASSERT_GE(while_node, 0);
  // At the condition both the initial decl and the in-loop assignment
  // reach (the back edge carries the latter).
  EXPECT_EQ(rd.reaching(while_node, "n").size(), 2u);
}

TEST(DefUse, DeadStoreHasEmptyUseSet) {
  const minic::Program program = parse(R"(
    int main()
    {
      int x = 1;
      int y = x + 1;
      x = 99;
      return y;
    }
  )");
  const minic::Function& main_fn = fn(program, "main");
  const FunctionCfg cfg = build_cfg(main_fn);
  const ReachingDefinitions rd(main_fn, cfg);
  const DefUseChains chains = build_def_use(main_fn, cfg, rd);
  int dead_id = -1;
  for (int node = 0; node < cfg.num_nodes(); ++node) {
    const minic::Stmt* stmt = cfg.stmt_of(node);
    if (stmt != nullptr && stmt->kind == minic::StmtKind::kAssign &&
        stmt->name == "x") {
      dead_id = stmt->id;
    }
  }
  ASSERT_GE(dead_id, 0);
  EXPECT_TRUE(chains.uses_of_def(dead_id).empty());
  // The live decl of x feeds y's initializer.
  EXPECT_FALSE(chains.def_to_uses.empty());
}

TEST(DefUse, UseSeesDefsFromBothBranches) {
  const minic::Program program = parse(R"(
    int main()
    {
      int x = 0;
      int c = 1;
      if (c > 0)
      {
        x = 1;
      }
      else
      {
        x = 2;
      }
      return x;
    }
  )");
  const minic::Function& main_fn = fn(program, "main");
  const FunctionCfg cfg = build_cfg(main_fn);
  const ReachingDefinitions rd(main_fn, cfg);
  const DefUseChains chains = build_def_use(main_fn, cfg, rd);
  int ret_id = -1;
  for (int node = 0; node < cfg.num_nodes(); ++node) {
    const minic::Stmt* stmt = cfg.stmt_of(node);
    if (stmt != nullptr && stmt->kind == minic::StmtKind::kReturn) {
      ret_id = stmt->id;
    }
  }
  ASSERT_GE(ret_id, 0);
  // Both branch assignments reach the return; the decl is killed on
  // both paths.
  EXPECT_EQ(chains.defs_of_use(ret_id).size(), 2u);
}

// --- slicer ---------------------------------------------------------------

TEST(Slicer, DropsReassignmentAfterLastIoUse) {
  const minic::Program program = parse(R"(
    int main()
    {
      int n = 4;
      int f = h5fcreate("/f.h5");
      int ds = h5dcreate(f, "x", 4, n);
      h5dwrite_all(ds, n);
      h5fclose(f);
      n = 99;
      return 0;
    }
  )");
  const SliceResult slice = slice_io(program, {"h5"});
  const std::string kernel = minic::print(program, [&](const minic::Stmt& s) {
    return slice.kept.count(s.id) > 0;
  });
  EXPECT_NE(kernel.find("int n = 4;"), std::string::npos);
  // The post-I/O reassignment can reach no use: sliced away. (The legacy
  // marker keeps it — this is exactly the slicer's precision win.)
  EXPECT_EQ(kernel.find("n = 99;"), std::string::npos);
}

TEST(Slicer, KeepsDefinitionsFromBothBranches) {
  const minic::Program program = parse(R"(
    int main()
    {
      int n = 0;
      int mode = 1;
      if (mode > 0)
      {
        n = 1024;
      }
      else
      {
        n = 2048;
      }
      int f = h5fcreate("/f.h5");
      int ds = h5dcreate(f, "x", 4, n);
      h5dwrite_all(ds, n);
      h5fclose(f);
      return 0;
    }
  )");
  const SliceResult slice = slice_io(program, {"h5"});
  const std::string kernel = minic::print(program, [&](const minic::Stmt& s) {
    return slice.kept.count(s.id) > 0;
  });
  EXPECT_NE(kernel.find("n = 1024;"), std::string::npos);
  EXPECT_NE(kernel.find("n = 2048;"), std::string::npos);
  EXPECT_NE(kernel.find("int mode = 1;"), std::string::npos);
}

TEST(Slicer, ShadowedNamesAcrossFunctionsStayDistinct) {
  const minic::Program program = parse(R"(
    int helper(int n)
    {
      int local = n * 2;
      return local;
    }
    int main()
    {
      int local = 4;
      int f = h5fcreate("/f.h5");
      int ds = h5dcreate(f, "x", 4, local);
      h5dwrite_all(ds, local);
      h5fclose(f);
      int waste = helper(local);
      return 0;
    }
  )");
  const SliceResult slice = slice_io(program, {"h5"});
  const std::string kernel = minic::print(program, [&](const minic::Stmt& s) {
    return slice.kept.count(s.id) > 0;
  });
  // main's `local` feeds I/O and survives; helper's same-named variable
  // belongs to a dead function and must not be dragged in by its name.
  EXPECT_NE(kernel.find("int local = 4;"), std::string::npos);
  EXPECT_EQ(kernel.find("local = n * 2"), std::string::npos);
  EXPECT_EQ(kernel.find("waste"), std::string::npos);
  EXPECT_EQ(slice.live_functions.count("helper"), 0u);
}

TEST(Slicer, ElseBranchOnlyIoKeepsElseDropsThen) {
  const minic::Program program = parse(R"(
    int main()
    {
      int mode = 0;
      if (mode > 0)
      {
        int a = 1;
        a = a + 1;
      }
      else
      {
        int f = h5fcreate("/f.h5");
        h5fclose(f);
      }
      return 0;
    }
  )");
  const SliceResult slice = slice_io(program, {"h5"});
  const std::string kernel = minic::print(program, [&](const minic::Stmt& s) {
    return slice.kept.count(s.id) > 0;
  });
  EXPECT_NE(kernel.find("h5fcreate"), std::string::npos);
  EXPECT_NE(kernel.find("int mode = 0;"), std::string::npos);
  EXPECT_EQ(kernel.find("a = a + 1;"), std::string::npos);
}

TEST(Slicer, RejectsProgramWithoutMain) {
  const minic::Program program = parse(R"(
    int helper()
    {
      return 0;
    }
  )");
  EXPECT_THROW(slice_io(program, {"h5"}), Error);
}

// --- linter ---------------------------------------------------------------

TEST(Lint, SmallWritesInLoopWithLineAndColumn) {
  const LintReport report = lint_source(
      R"(int main()
{
  for (int i = 0; i < 10; i = i + 1)
  {
    fprintf_log("/log.txt", 128);
  }
  return 0;
})");
  ASSERT_EQ(report.count(LintKind::kSmallWritesInLoop), 1u);
  const Diagnostic& d = report.diagnostics[0];
  EXPECT_EQ(d.kind, LintKind::kSmallWritesInLoop);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.line, 5);
  EXPECT_EQ(d.column, 5);
  EXPECT_EQ(d.function, "main");
  EXPECT_NE(std::find(d.hint_params.begin(), d.hint_params.end(),
                      "cb_buffer_size"),
            d.hint_params.end());
}

TEST(Lint, OpenCloseAndCreateOverwriteInLoop) {
  const LintReport report = lint_source(
      R"(int main()
{
  for (int i = 0; i < 4; i = i + 1)
  {
    int f = h5fcreate("/same.h5");
    h5fclose(f);
  }
  return 0;
})");
  EXPECT_EQ(report.count(LintKind::kOpenCloseInLoop), 2u);
  ASSERT_EQ(report.count(LintKind::kCreateOverwriteInLoop), 1u);
  EXPECT_TRUE(report.has_errors());
  for (const Diagnostic& d : report.diagnostics) {
    if (d.kind == LintKind::kCreateOverwriteInLoop) {
      EXPECT_EQ(d.severity, Severity::kError);
      EXPECT_EQ(d.line, 5);
      EXPECT_EQ(d.column, 13);
    }
  }
}

TEST(Lint, StripeUnalignedChunkAndStridedBlock) {
  const LintReport report = lint_source(
      R"(int main()
{
  int f = h5fcreate("/c.h5");
  h5set_chunking(12288);
  int ds = h5dcreate(f, "x", 8, 1048576);
  for (int i = 0; i < 8; i = i + 1)
  {
    h5dwrite_strided(ds, i, 12288);
  }
  h5fclose(f);
  return 0;
})");
  // 12288 elements x 8 bytes = 98304 B: flagged at the chunking call and
  // at the strided write.
  ASSERT_EQ(report.count(LintKind::kStripeUnalignedAccess), 2u);
  EXPECT_EQ(report.count(LintKind::kIndependentIoInLoop), 1u);
  EXPECT_FALSE(report.has_errors());
  std::set<int> lines;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.kind == LintKind::kStripeUnalignedAccess) lines.insert(d.line);
  }
  EXPECT_EQ(lines, (std::set<int>{4, 8}));
}

TEST(Lint, DeadWriteFlagsOnlyUnreadAssignment) {
  const LintReport report = lint_source(
      R"(int main()
{
  int x = 1;
  x = 2;
  int f = h5fcreate("/d.h5");
  int ds = h5dcreate(f, "v", 4, x);
  h5dwrite_all(ds, x);
  x = 99;
  h5fclose(f);
  return 0;
})");
  ASSERT_EQ(report.count(LintKind::kDeadWrite), 1u);
  for (const Diagnostic& d : report.diagnostics) {
    if (d.kind == LintKind::kDeadWrite) {
      EXPECT_EQ(d.line, 8);
      EXPECT_EQ(d.column, 3);
      EXPECT_NE(d.message.find("'x'"), std::string::npos);
    }
  }
}

TEST(Lint, ContiguousLargeAccessIsInfo) {
  const LintReport report = lint_source(
      R"(int main()
{
  int np = 2097152;
  int f = h5fcreate("/h.h5");
  int ds = h5dcreate(f, "p", 4, np * mpi_size());
  h5dwrite_all(ds, np);
  h5fclose(f);
  return 0;
})");
  ASSERT_EQ(report.count(LintKind::kContiguousLargeAccess), 1u);
  for (const Diagnostic& d : report.diagnostics) {
    if (d.kind == LintKind::kContiguousLargeAccess) {
      EXPECT_EQ(d.severity, Severity::kInfo);
      EXPECT_EQ(d.line, 6);
      EXPECT_NE(std::find(d.hint_params.begin(), d.hint_params.end(),
                          "striping_factor"),
                d.hint_params.end());
    }
  }
  EXPECT_FALSE(report.has_errors());
}

TEST(Lint, CleanProgramYieldsNoDiagnostics) {
  // One aligned, mid-sized (1 MiB) contiguous write outside any loop:
  // neither small, nor large, nor unaligned, nor churning metadata.
  const LintReport report = lint_source(
      R"(int main()
{
  int f = h5fcreate("/ok.h5");
  int ds = h5dcreate(f, "x", 8, 131072);
  h5dwrite_all(ds, 131072);
  h5fclose(f);
  return 0;
})");
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_TRUE(report.tuning_hints().empty());
}

TEST(Lint, WorkloadSourcesCoverAtLeastFiveKinds) {
  using namespace wl::sources;
  std::set<LintKind> kinds;
  for (const std::string& source :
       {macsio_vpic(), vpic(), flash(), hacc(), bdcats()}) {
    const LintReport report = lint_source(source);
    // The built-in workloads carry intentional anti-patterns, but none
    // at error severity (the CI lint gate must stay green on them).
    EXPECT_FALSE(report.has_errors());
    for (const Diagnostic& d : report.diagnostics) kinds.insert(d.kind);
  }
  EXPECT_GE(kinds.size(), 5u);
}

TEST(Lint, FormatIncludesLocationSeverityKindAndHints) {
  Diagnostic d;
  d.kind = LintKind::kSmallWritesInLoop;
  d.severity = Severity::kWarning;
  d.line = 12;
  d.column = 7;
  d.function = "main";
  d.message = "msg";
  d.hint_params = {"cb_buffer_size", "sieve_buf_size"};
  EXPECT_EQ(format(d),
            "main:12:7: warning: small-writes-in-loop: msg "
            "[hints: cb_buffer_size, sieve_buf_size]");
}

TEST(Lint, TuningHintsAreSeverityWeightedAndNormalized) {
  const LintReport report = lint_source(wl::sources::flash());
  const auto hints = report.tuning_hints();
  ASSERT_FALSE(hints.empty());
  EXPECT_DOUBLE_EQ(hints.front().second, 1.0);  // max normalized to 1
  for (const auto& [param, weight] : hints) {
    EXPECT_GT(weight, 0.0);
    EXPECT_LE(weight, 1.0);
  }
  // Descending order.
  for (std::size_t i = 1; i < hints.size(); ++i) {
    EXPECT_GE(hints[i - 1].second, hints[i].second);
  }
}

// --- hints -> Smart Configuration Generation -------------------------------

TEST(Hints, ApplyHintsPromotesParameterInRanking) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  core::SmartConfigGen gen(space);
  const std::size_t target = space.index_of("romio_collective");
  // Uniform untrained impact: a hint must put the parameter on top.
  gen.apply_hints({{"romio_collective", 1.0}, {"no_such_param", 0.9}});
  EXPECT_EQ(gen.ranking().front(), target);
  // Impact still sums to 1.
  double total = 0.0;
  for (double x : gen.impact_scores()) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Hints, RepeatedApplicationKeepsStrongestBoost) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  core::SmartConfigGen gen(space);
  gen.apply_hints({{"cb_nodes", 0.4}});
  gen.apply_hints({{"cb_nodes", 0.2}});  // weaker: must not downgrade
  const std::size_t idx = space.index_of("cb_nodes");
  EXPECT_DOUBLE_EQ(gen.hint_boosts()[idx], 0.4);
  // Out-of-range weights are clamped into [0, 1].
  gen.apply_hints({{"cb_nodes", 7.5}});
  EXPECT_DOUBLE_EQ(gen.hint_boosts()[idx], 1.0);
}

TEST(Hints, LintReportFeedsRankingEndToEnd) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  core::SmartConfigGen gen(space);
  const LintReport report = lint_source(wl::sources::flash());
  gen.apply_hints(report.tuning_hints());
  // flash's dominant findings are stripe misalignment: striping_unit is
  // its strongest hint and must lead the untrained ranking.
  EXPECT_EQ(gen.ranking().front(), space.index_of("striping_unit"));
}

}  // namespace
}  // namespace tunio::analysis
