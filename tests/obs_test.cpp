// Tests for the observability layer: JSON document model, metrics
// registry (including concurrent publication — run these under TSan),
// and the Chrome-trace tracer.
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace tunio::obs {
namespace {

// ---------------------------------------------------------------- Json

TEST(Json, NumberFormatting) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(2.5), "2.5");
  // Non-finite values have no JSON representation.
  EXPECT_EQ(json_number(1.0 / 0.0), "null");
  EXPECT_EQ(json_number(0.0 / 0.0), "null");
}

TEST(Json, QuoteEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_quote("line\nbreak"), "\"line\\nbreak\"");
}

TEST(Json, BuildDumpParseRoundTrip) {
  Json doc = Json::object();
  doc.set("name", Json::string("fig01"));
  doc.set("count", Json::number(3));
  Json values = Json::array();
  values.push_back(Json::number(1.5));
  values.push_back(Json::boolean(true));
  values.push_back(Json());
  doc.set("values", std::move(values));

  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed.find("name")->as_string(), "fig01");
  EXPECT_DOUBLE_EQ(reparsed.find("count")->as_number(), 3.0);
  const Json& arr = *reparsed.find("values");
  ASSERT_EQ(arr.items().size(), 3u);
  EXPECT_DOUBLE_EQ(arr.items()[0].as_number(), 1.5);
  EXPECT_TRUE(arr.items()[1].as_bool());
  EXPECT_TRUE(arr.items()[2].is_null());
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW(Json::parse("{\"a\":"), Error);
  EXPECT_THROW(Json::parse("[1, 2,]trailing"), Error);
  EXPECT_THROW(Json::parse(""), Error);
}

// ------------------------------------------------------------- Metrics

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.count");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name → same instrument.
  EXPECT_EQ(&registry.counter("test.count"), &c);

  Gauge& g = registry.gauge("test.gauge");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Metrics, ConcurrentCountersSumExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves the instrument by name AND updates it —
      // exercising both the name-table lock and the lock-free updates.
      Counter& c = registry.counter("hot.counter");
      Gauge& g = registry.gauge("hot.gauge");
      Histogram& h = registry.histogram("hot.hist", {1.0, 10.0});
      for (int i = 0; i < kAdds; ++i) {
        c.add();
        g.add(1.0);
        h.observe(static_cast<double>(i % 20), "thread");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("hot.counter"),
            static_cast<std::uint64_t>(kThreads) * kAdds);
  EXPECT_DOUBLE_EQ(snap.gauge("hot.gauge"), kThreads * double(kAdds));
  const MetricsSnapshot::HistogramValue* hist = snap.histogram("hot.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, SnapshotIsIsolatedFromLaterUpdates) {
  MetricsRegistry registry;
  registry.counter("iso.count").add(3);
  const MetricsSnapshot before = registry.snapshot();
  registry.counter("iso.count").add(100);
  registry.gauge("iso.new_gauge").set(1.0);
  EXPECT_EQ(before.counter("iso.count"), 3u);
  EXPECT_DOUBLE_EQ(before.gauge("iso.new_gauge"), 0.0);  // absent → 0
  EXPECT_EQ(registry.snapshot().counter("iso.count"), 103u);
}

TEST(Metrics, HistogramBucketsAndExemplar) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {10.0, 100.0});
  h.observe(5.0, "small");
  h.observe(50.0, "medium");
  h.observe(500.0, "large");
  h.observe(499.0, "almost");

  const MetricsSnapshot snap = registry.snapshot();
  const MetricsSnapshot::HistogramValue* v = snap.histogram("h");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->counts.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(v->counts[0], 1u);
  EXPECT_EQ(v->counts[1], 1u);
  EXPECT_EQ(v->counts[2], 2u);
  EXPECT_EQ(v->count, 4u);
  EXPECT_DOUBLE_EQ(v->sum, 1054.0);
  EXPECT_DOUBLE_EQ(v->max, 500.0);
  EXPECT_EQ(v->exemplar, "large");  // label of the largest sample
}

TEST(Metrics, AddBucketedMergesTeardownFlushes) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("sizes", darshan_size_bounds());
  const std::size_t buckets = darshan_size_bounds().size() + 1;
  std::vector<std::uint64_t> counts(buckets, 0);
  counts[0] = 7;
  counts[buckets - 1] = 2;
  h.add_bucketed(counts, 1234.0);
  h.add_bucketed(counts, 1.0);

  const MetricsSnapshot snap = registry.snapshot();
  const MetricsSnapshot::HistogramValue* v = snap.histogram("sizes");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->counts[0], 14u);
  EXPECT_EQ(v->counts[buckets - 1], 4u);
  EXPECT_EQ(v->count, 18u);
  EXPECT_DOUBLE_EQ(v->sum, 1235.0);
}

TEST(Metrics, ResetZeroesButKeepsInstrumentIdentity) {
  MetricsRegistry registry;
  Counter& c = registry.counter("r.count");
  c.add(9);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&registry.counter("r.count"), &c);  // cached refs stay valid
}

TEST(Metrics, SnapshotSerializesToParsableJson) {
  MetricsRegistry registry;
  registry.counter("s.count").add(2);
  registry.gauge("s.gauge").set(0.5);
  registry.histogram("s.hist", {1.0}).observe(3.0, "x");
  const Json doc = Json::parse(registry.snapshot().to_json().dump());
  ASSERT_NE(doc.find("counters"), nullptr);
  ASSERT_NE(doc.find("gauges"), nullptr);
  ASSERT_NE(doc.find("histograms"), nullptr);
}

// -------------------------------------------------------------- Tracer

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  tracer.span("pfs", "read", 0.0, 1.0, kPidStack, 0);
  tracer.instant("rl", "decide", 2.0, kPidRl, 0);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, CapDropsDataPlaneButKeepsControlPlane) {
  Tracer tracer;
  tracer.set_capacity(4);
  tracer.enable();
  for (int i = 0; i < 10; ++i) {
    tracer.span("pfs", "write", i, i + 0.5, kPidStack, 0);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Control-plane events are generation-bounded and must survive a full
  // buffer — a capped trace still has to show why the I/O happened.
  tracer.span("tuner", "generation", 0.0, 60.0, kPidTuner, 0);
  tracer.instant("rl", "early_stop.continue", 60.0, kPidRl, 0);
  EXPECT_EQ(tracer.size(), 6u);
}

TEST(Tracer, EmitsWellFormedChromeTrace) {
  Tracer tracer;
  tracer.enable();
  tracer.span("pfs", "read", 1.0, 2.0, kPidStack, 3,
              {{"bytes", json_number(4096)}});
  tracer.span("tuner", "generation", 0.0, 120.0, kPidTuner, 0,
              {{"best_mbps", json_number(123.5)},
               {"label", json_quote("gen \"0\"")}});

  const Json doc = Json::parse(tracer.to_json());
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 4 process-name metadata records + the 2 spans.
  ASSERT_EQ(events->items().size(), 6u);
  EXPECT_DOUBLE_EQ(doc.find("droppedEvents")->as_number(), 0.0);

  const Json& pfs = events->items()[4];
  EXPECT_EQ(pfs.find("ph")->as_string(), "X");
  EXPECT_EQ(pfs.find("cat")->as_string(), "pfs");
  EXPECT_DOUBLE_EQ(pfs.find("ts")->as_number(), 1e6);   // seconds → µs
  EXPECT_DOUBLE_EQ(pfs.find("dur")->as_number(), 1e6);
  EXPECT_DOUBLE_EQ(pfs.find("args")->find("bytes")->as_number(), 4096.0);

  const Json& gen = events->items()[5];
  EXPECT_EQ(gen.find("args")->find("label")->as_string(), "gen \"0\"");
}

TEST(Tracer, ClearResetsBufferAndDropCount) {
  Tracer tracer;
  tracer.set_capacity(1);
  tracer.enable();
  tracer.span("pfs", "a", 0.0, 1.0, kPidStack, 0);
  tracer.span("pfs", "b", 0.0, 1.0, kPidStack, 0);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, AmbientSecondsIsThreadLocal) {
  Tracer::set_ambient_seconds(42.0);
  std::thread other([] {
    EXPECT_DOUBLE_EQ(Tracer::ambient_seconds(), 0.0);
    Tracer::set_ambient_seconds(7.0);
    EXPECT_DOUBLE_EQ(Tracer::ambient_seconds(), 7.0);
  });
  other.join();
  EXPECT_DOUBLE_EQ(Tracer::ambient_seconds(), 42.0);
}

TEST(Tracer, WriteFileProducesParsableDocument) {
  Tracer tracer;
  tracer.enable();
  tracer.span("mpi", "barrier", 0.5, 0.75, kPidStack, 1);
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(tracer.write_file(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.find("traceEvents")->items().size(), 5u);
}

}  // namespace
}  // namespace tunio::obs
