// Tests for the mini-C frontend: lexer, parser, printer normalization.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "minic/lexer.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"

namespace tunio::minic {
namespace {

TEST(Lexer, TokenKinds) {
  const auto tokens = lex("int x = 42; double y = 3.5; string s = \"hi\";");
  ASSERT_GE(tokens.size(), 15u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_EQ(tokens[8].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[8].float_value, 3.5);
  EXPECT_EQ(tokens[13].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[13].text, "hi");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = lex("int x = 1;\n  x = 2;");
  // "int" at 1:1, "x" at 1:5; second-line "x" at 2:3 (after the indent).
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 1);
  EXPECT_EQ(tokens[1].column, 5);
  EXPECT_EQ(tokens[5].line, 2);
  EXPECT_EQ(tokens[5].column, 3);
}

TEST(Lexer, ColumnResetsAfterBlockComment) {
  const auto tokens = lex("/* multi\nline */ int y;");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].line, 2);
  EXPECT_EQ(tokens[0].column, 9);  // after "line */ "
}

TEST(Parser, PropagatesLineAndColumnIntoAst) {
  const Program program = parse(
      "int main()\n"
      "{\n"
      "  int a = 1;\n"
      "  if (a > 0)\n"
      "  {\n"
      "    a = f(a + 2);\n"
      "  }\n"
      "  return a;\n"
      "}\n");
  const Stmt& body = *program.functions[0].body;
  const Stmt& decl = *body.statements[0];
  EXPECT_EQ(decl.line, 3);
  EXPECT_EQ(decl.col, 3);
  const Stmt& branch = *body.statements[1];
  EXPECT_EQ(branch.line, 4);
  EXPECT_EQ(branch.col, 3);
  const Stmt& assign = *branch.body->statements[0];
  EXPECT_EQ(assign.line, 6);
  EXPECT_EQ(assign.col, 5);
  // The call expression carries its own position...
  const Expr& call = *assign.value;
  EXPECT_EQ(call.kind, ExprKind::kCall);
  EXPECT_EQ(call.line, 6);
  EXPECT_EQ(call.col, 9);
  // ...and clones preserve both.
  const StmtPtr copy = clone(assign);
  EXPECT_EQ(copy->line, 6);
  EXPECT_EQ(copy->col, 5);
  EXPECT_EQ(copy->value->col, 9);
}

TEST(Lexer, OperatorsAndComments) {
  const auto tokens = lex(R"(
    // line comment
    a <= b && c != d || !e; /* block
    comment */ f >= g == h;
  )");
  std::vector<TokenKind> kinds;
  for (const auto& t : tokens) kinds.push_back(t.kind);
  EXPECT_TRUE(std::find(kinds.begin(), kinds.end(), TokenKind::kLessEq) !=
              kinds.end());
  EXPECT_TRUE(std::find(kinds.begin(), kinds.end(), TokenKind::kAndAnd) !=
              kinds.end());
  EXPECT_TRUE(std::find(kinds.begin(), kinds.end(), TokenKind::kNotEq) !=
              kinds.end());
  EXPECT_TRUE(std::find(kinds.begin(), kinds.end(), TokenKind::kOrOr) !=
              kinds.end());
  EXPECT_TRUE(std::find(kinds.begin(), kinds.end(), TokenKind::kNot) !=
              kinds.end());
  EXPECT_TRUE(std::find(kinds.begin(), kinds.end(), TokenKind::kGreaterEq) !=
              kinds.end());
}

TEST(Lexer, LineTracking) {
  const auto tokens = lex("int a;\nint b;\n\nint c;");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[3].line, 2);
  EXPECT_EQ(tokens[6].line, 4);
}

TEST(Lexer, Errors) {
  EXPECT_THROW(lex("\"unterminated"), SourceError);
  EXPECT_THROW(lex("a @ b"), SourceError);
  EXPECT_THROW(lex("a & b"), SourceError);
  EXPECT_THROW(lex("/* open"), SourceError);
}

TEST(Parser, FunctionStructure) {
  const Program program = parse(R"(
    int helper(int a, double b)
    {
      return a;
    }
    int main()
    {
      int x = helper(1, 2.0);
      return x;
    }
  )");
  ASSERT_EQ(program.functions.size(), 2u);
  EXPECT_EQ(program.functions[0].name, "helper");
  ASSERT_EQ(program.functions[0].params.size(), 2u);
  EXPECT_EQ(program.functions[0].params[1].first, "double");
  EXPECT_NE(program.find("main"), nullptr);
  EXPECT_EQ(program.find("nope"), nullptr);
}

TEST(Parser, ControlFlowShapes) {
  const Program program = parse(R"(
    int main()
    {
      int sum = 0;
      for (int i = 0; i < 10; i = i + 1)
      {
        if (i % 2 == 0)
        {
          sum = sum + i;
        }
        else
        {
          sum = sum - 1;
        }
      }
      while (sum > 100)
      {
        sum = sum / 2;
      }
      return sum;
    }
  )");
  const Stmt& body = *program.functions[0].body;
  ASSERT_EQ(body.kind, StmtKind::kBlock);
  ASSERT_EQ(body.statements.size(), 4u);
  EXPECT_EQ(body.statements[0]->kind, StmtKind::kDecl);
  EXPECT_EQ(body.statements[1]->kind, StmtKind::kFor);
  EXPECT_EQ(body.statements[2]->kind, StmtKind::kWhile);
  EXPECT_EQ(body.statements[3]->kind, StmtKind::kReturn);
  const Stmt& loop = *body.statements[1];
  ASSERT_NE(loop.init, nullptr);
  ASSERT_NE(loop.cond, nullptr);
  ASSERT_NE(loop.update, nullptr);
  const Stmt& branch = *loop.body->statements[0];
  EXPECT_EQ(branch.kind, StmtKind::kIf);
  EXPECT_NE(branch.else_body, nullptr);
}

TEST(Parser, UniqueStatementIds) {
  const Program program = parse(R"(
    int main()
    {
      int a = 1;
      int b = 2;
      for (int i = 0; i < 3; i = i + 1)
      {
        a = a + b;
      }
      return a;
    }
  )");
  std::set<int> ids;
  std::function<void(const Stmt&)> collect = [&](const Stmt& stmt) {
    EXPECT_TRUE(ids.insert(stmt.id).second) << "duplicate id " << stmt.id;
    if (stmt.init) collect(*stmt.init);
    if (stmt.update) collect(*stmt.update);
    if (stmt.body) collect(*stmt.body);
    if (stmt.else_body) collect(*stmt.else_body);
    for (const auto& child : stmt.statements) collect(*child);
  };
  collect(*program.functions[0].body);
  EXPECT_EQ(program.next_stmt_id, static_cast<int>(ids.size()));
}

TEST(Parser, OperatorPrecedence) {
  const Program program = parse(R"(
    int main()
    {
      int x = 1 + 2 * 3;
      return x;
    }
  )");
  const Expr& init = *program.functions[0].body->statements[0]->value;
  ASSERT_EQ(init.kind, ExprKind::kBinary);
  EXPECT_EQ(init.text, "+");  // '*' binds tighter
  EXPECT_EQ(init.children[1]->text, "*");
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("int main() { int x = ; }"), SourceError);
  EXPECT_THROW(parse("int main() { for i; }"), SourceError);
  EXPECT_THROW(parse("main() { }"), Error);
  EXPECT_THROW(parse("int main() { x = 1 }"), SourceError);  // missing ';'
}

TEST(Printer, NormalizesToOneStatementPerLine) {
  const Program program =
      parse("int main() { int a = 1; int b = 2; return a + b; }");
  const std::string printed = print(program);
  // Braces on their own lines, one statement per line.
  EXPECT_NE(printed.find("{\n"), std::string::npos);
  EXPECT_NE(printed.find("int a = 1;\n"), std::string::npos);
  EXPECT_NE(printed.find("int b = 2;\n"), std::string::npos);
  EXPECT_NE(printed.find("return a + b;\n"), std::string::npos);
}

TEST(Printer, RoundTripIsStable) {
  const std::string source = R"(
    int work(int n)
    {
      int total = 0;
      for (int i = 0; i < n; i = i + 1)
      {
        if (i % 3 == 0 && n > 2)
        {
          total = total + i * 2;
        }
      }
      return total;
    }
    int main()
    {
      return work(10);
    }
  )";
  const std::string once = print(parse(source));
  const std::string twice = print(parse(once));
  EXPECT_EQ(once, twice);  // printing is a fixpoint after one pass
}

TEST(Printer, FilteredPrintDropsStatements) {
  const Program program = parse(R"(
    int main()
    {
      int keep = 1;
      int drop = 2;
      return keep;
    }
  )");
  // Keep everything except the 'drop' declaration.
  const std::string filtered = print(program, [](const Stmt& stmt) {
    return !(stmt.kind == StmtKind::kDecl && stmt.name == "drop");
  });
  EXPECT_NE(filtered.find("int keep = 1;"), std::string::npos);
  EXPECT_EQ(filtered.find("int drop"), std::string::npos);
}

TEST(Printer, ParenthesizationPreservesSemantics) {
  const Program program =
      parse("int main() { int x = (1 + 2) * 3; return x; }");
  const std::string printed = print(program);
  EXPECT_NE(printed.find("(1 + 2) * 3"), std::string::npos);
}

TEST(Clone, DeepCopyIsIndependent) {
  const Program program = parse("int main() { int a = 5; return a; }");
  StmtPtr copy = clone(*program.functions[0].body);
  EXPECT_EQ(copy->statements.size(), 2u);
  copy->statements.clear();
  EXPECT_EQ(program.functions[0].body->statements.size(), 2u);
}

TEST(PrintExpr, RendersExpression) {
  const Program program = parse("int main() { return 1 + 2 * x; }");
  const Expr& e = *program.functions[0].body->statements[0]->value;
  EXPECT_EQ(print_expr(e), "1 + 2 * x");
}

/// Random-program generator for round-trip property testing: emits
/// structurally valid mini-C with nested control flow and arithmetic.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    vars_ = {"a", "b", "c"};
    std::string body = "  int a = 1;\n  int b = 2;\n  int c = 3;\n";
    const int statements = static_cast<int>(rng_.uniform_int(2, 6));
    for (int i = 0; i < statements; ++i) {
      body += statement(2);
    }
    body += "  return a + b;\n";
    return "int main()\n{\n" + body + "}\n";
  }

 private:
  std::string indent(int depth) { return std::string(depth, ' '); }

  std::string expr(int depth) {
    if (depth <= 0 || rng_.chance(0.4)) {
      return rng_.chance(0.5) ? rng_.choice(vars_)
                              : std::to_string(rng_.uniform_int(0, 99));
    }
    static const std::vector<std::string> ops{"+", "-", "*", "%"};
    // '%' and '/' by non-literal risk divide-by-zero at run time; the
    // round-trip property only needs parseability, and denominators are
    // kept as non-zero literals.
    const std::string& op = rng_.choice(ops);
    const std::string rhs =
        (op == "%") ? std::to_string(rng_.uniform_int(1, 9)) : expr(depth - 1);
    return "(" + expr(depth - 1) + " " + op + " " + rhs + ")";
  }

  std::string statement(int depth) {
    const auto kind = rng_.uniform_int(0, 2);
    const std::string pad = indent(depth);
    if (kind == 0) {
      return pad + rng_.choice(vars_) + " = " + expr(2) + ";\n";
    }
    if (kind == 1) {
      return pad + "if (" + expr(1) + " < " + expr(1) + ")\n" + pad + "{\n" +
             statement(depth + 2) + pad + "}\n";
    }
    const std::string v = "i" + std::to_string(counter_++);
    const std::string body = statement(depth + 2);
    return pad + "for (int " + v + " = 0; " + v + " < 3; " + v + " = " + v +
           " + 1)\n" + pad + "{\n" + body + pad + "}\n";
  }

  Rng rng_;
  std::vector<std::string> vars_;
  int counter_ = 0;
};

/// Property: for any generated program, print(parse(x)) is a fixpoint
/// after one normalization pass.
class RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripProperty, PrintParsePrintIsStable) {
  ProgramGenerator generator(GetParam());
  for (int i = 0; i < 20; ++i) {
    const std::string source = generator.generate();
    const std::string once = print(parse(source));
    const std::string twice = print(parse(once));
    EXPECT_EQ(once, twice) << "source was:\n" << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace tunio::minic
