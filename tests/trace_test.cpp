// Tests for run metering and the perf objective.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/meter.hpp"
#include "trace/report.hpp"

namespace tunio::trace {
namespace {

TEST(PerfObjective, Formula) {
  // perf = (1-α)·BW_r + α·BW_w
  EXPECT_DOUBLE_EQ(perf_objective(100.0, 200.0, 1.0), 200.0);
  EXPECT_DOUBLE_EQ(perf_objective(100.0, 200.0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(perf_objective(100.0, 200.0, 0.5), 150.0);
}

TEST(RunMeter, WriteOnlyRun) {
  mpisim::MpiSim mpi(4);
  pfs::PfsSimulator fs;
  fs.create("/f", 0.0);
  RunMeter meter(mpi, fs);
  meter.begin();
  meter.phase_begin(Phase::kWrite);
  const SimSeconds done = fs.write("/f", 0.0, 0, 100 * MiB);
  for (unsigned r = 0; r < mpi.size(); ++r) mpi.set_clock(r, done);
  const PerfResult result = meter.end();
  EXPECT_DOUBLE_EQ(result.alpha, 1.0);
  EXPECT_GT(result.bw_write_mbps, 0.0);
  EXPECT_DOUBLE_EQ(result.bw_read_mbps, 0.0);
  EXPECT_DOUBLE_EQ(result.perf_mbps, result.bw_write_mbps);
  EXPECT_EQ(result.counters.bytes_written, 100 * MiB);
  EXPECT_GT(result.counters.write_time, 0.0);
  EXPECT_DOUBLE_EQ(result.counters.read_time, 0.0);
}

TEST(RunMeter, MixedPhasesSplitTime) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  fs.create("/f", 0.0);
  RunMeter meter(mpi, fs);
  meter.begin();

  meter.phase_begin(Phase::kOther);
  mpi.compute(0, 5.0);
  mpi.barrier();

  meter.phase_begin(Phase::kWrite);
  SimSeconds t = fs.write("/f", mpi.max_clock(), 0, 10 * MiB);
  for (unsigned r = 0; r < 2; ++r) mpi.set_clock(r, t);

  meter.phase_begin(Phase::kRead);
  t = fs.read("/f", mpi.max_clock(), 0, 10 * MiB);
  for (unsigned r = 0; r < 2; ++r) mpi.set_clock(r, t);

  const PerfResult result = meter.end();
  EXPECT_GT(result.counters.other_time, 4.9);
  EXPECT_GT(result.counters.write_time, 0.0);
  EXPECT_GT(result.counters.read_time, 0.0);
  EXPECT_NEAR(result.alpha, 0.5, 1e-9);
  EXPECT_GT(result.perf_mbps, 0.0);
  EXPECT_NEAR(result.counters.elapsed,
              result.counters.other_time + result.counters.write_time +
                  result.counters.read_time,
              1e-9);
}

TEST(RunMeter, UnphasedRunFallsBackToWholeRunBandwidth) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  fs.create("/f", 0.0);
  RunMeter meter(mpi, fs);
  meter.begin();
  const SimSeconds done = fs.write("/f", 0.0, 0, 10 * MiB);
  for (unsigned r = 0; r < 2; ++r) mpi.set_clock(r, done);
  const PerfResult result = meter.end();
  EXPECT_GT(result.bw_write_mbps, 0.0);
  EXPECT_DOUBLE_EQ(result.perf_mbps, result.bw_write_mbps);
}

TEST(RunMeter, UnphasedBandwidthUsesIoWindowNotElapsed) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  fs.create("/f", 0.0);
  RunMeter meter(mpi, fs);
  meter.begin();
  mpi.compute(0, 100.0);  // long unphased compute before the I/O
  const SimSeconds start = mpi.max_clock();
  const SimSeconds done = fs.write("/f", start, 0, 10 * MiB);
  for (unsigned r = 0; r < 2; ++r) mpi.set_clock(r, done);
  const PerfResult result = meter.end();
  // The observer-collected window excludes the compute prefix, so the
  // reported bandwidth is the I/O-window rate, far above the diluted
  // whole-run-elapsed rate the old fallback would have reported.
  const double elapsed_bw =
      to_mbps(static_cast<double>(10 * MiB) / result.counters.elapsed);
  const double window_bw =
      to_mbps(static_cast<double>(10 * MiB) / (done - start));
  EXPECT_NEAR(result.bw_write_mbps, window_bw, window_bw * 1e-9);
  EXPECT_GT(result.bw_write_mbps, 2.0 * elapsed_bw);
}

TEST(RunMeter, OnlyCountsItsOwnWindow) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  fs.create("/f", 0.0);
  fs.write("/f", 0.0, 0, 50 * MiB);  // before metering
  RunMeter meter(mpi, fs);
  meter.begin();
  meter.phase_begin(Phase::kWrite);
  const SimSeconds done = fs.write("/f", 100.0, 50 * MiB, 1 * MiB);
  for (unsigned r = 0; r < 2; ++r) mpi.set_clock(r, done);
  const PerfResult result = meter.end();
  EXPECT_EQ(result.counters.bytes_written, 1 * MiB);  // delta only
}

TEST(RunMeter, MisuseThrows) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  RunMeter meter(mpi, fs);
  EXPECT_THROW(meter.end(), Error);
  EXPECT_THROW(meter.phase_begin(Phase::kWrite), Error);
  meter.begin();
  EXPECT_THROW(meter.begin(), Error);
}

TEST(RunMeter, ZeroIoRunHasZeroPerf) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  RunMeter meter(mpi, fs);
  meter.begin();
  mpi.compute(0, 1.0);
  const PerfResult result = meter.end();
  EXPECT_DOUBLE_EQ(result.perf_mbps, 0.0);
  EXPECT_DOUBLE_EQ(result.alpha, 0.0);
}

TEST(Report, RendersCountersAndHistograms) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  fs.create("/f", 0.0);
  RunMeter meter(mpi, fs);
  meter.begin();
  meter.phase_begin(Phase::kWrite);
  SimSeconds t = fs.write("/f", 0.0, 0, 8 * MiB);
  t = fs.write("/f", t, 8 * MiB, 512);
  for (unsigned r = 0; r < 2; ++r) mpi.set_clock(r, t);
  const PerfResult result = meter.end();

  EXPECT_EQ(result.counters.write_sizes.counts[0], 1u);  // the 512 B write
  EXPECT_EQ(result.counters.write_sizes.counts[3], 1u);  // the 8 MiB write

  const std::string text = report(result);
  EXPECT_NE(text.find("writes:         2 ops"), std::string::npos);
  EXPECT_NE(text.find("perf objective:"), std::string::npos);
  EXPECT_NE(text.find("<4K:1"), std::string::npos);
  EXPECT_NE(text.find("1M-16M:1"), std::string::npos);
}

TEST(Report, HistogramLineFormat) {
  pfs::SizeHistogram h;
  h.record(1);
  h.record(20 * MiB);
  EXPECT_EQ(histogram_line(h), "<4K:1  4K-64K:0  64K-1M:0  1M-16M:0  >=16M:1");
}

}  // namespace
}  // namespace tunio::trace
