// Tests for the tuning service: parallel evaluation engine, sharded
// result cache, service objective accounting, and the tuning server.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/error.hpp"
#include "service/eval_engine.hpp"
#include "service/result_cache.hpp"
#include "service/service_objective.hpp"
#include "service/tuning_server.hpp"
#include "tuner/genetic_tuner.hpp"
#include "tuner/objective.hpp"
#include "workloads/workload.hpp"

namespace tunio::service {
namespace {

using tuner::Evaluation;
using tuner::GaOptions;
using tuner::GeneticTuner;
using tuner::TuningResult;

tuner::TestbedOptions small_testbed() {
  tuner::TestbedOptions tb;
  tb.num_ranks = 16;
  tb.runs_per_eval = 2;
  return tb;
}

std::shared_ptr<tuner::Objective> hacc_objective() {
  wl::HaccParams params;
  params.particles_per_rank = 1 << 15;
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;
  return std::shared_ptr<tuner::Objective>(tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc(params)),
      small_testbed(), kernel));
}

std::shared_ptr<tuner::Objective> flash_objective() {
  wl::FlashParams params;
  params.blocks_per_rank = 2;
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;
  return std::shared_ptr<tuner::Objective>(tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_flash(params)),
      small_testbed(), kernel));
}

/// Deterministic, concurrency-safe synthetic objective: perf is a pure
/// function of the genome, each evaluation bills a flat 30 s of
/// simulated time and (optionally) burns real wall-clock to make
/// cancellation races testable.
class SyntheticObjective final : public tuner::Objective {
 public:
  explicit SyntheticObjective(std::chrono::microseconds delay = {})
      : delay_(delay) {}

  std::string name() const override { return "synthetic"; }

  Evaluation evaluate(const cfg::Configuration& config) override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    evals_.fetch_add(1, std::memory_order_relaxed);
    double score = 0.0;
    for (std::size_t p = 0; p < config.size(); ++p) {
      score += static_cast<double>(config.index(p)) * (p + 1);
    }
    Evaluation eval;
    eval.perf_mbps = score;
    eval.eval_seconds = 30.0;
    return eval;
  }

  bool concurrent_safe() const override { return true; }
  std::uint64_t evaluations() const override {
    return evals_.load(std::memory_order_relaxed);
  }

 private:
  std::chrono::microseconds delay_;
  std::atomic<std::uint64_t> evals_{0};
};

std::vector<cfg::Configuration> some_configs(const cfg::ConfigSpace& space,
                                             std::size_t n) {
  std::vector<cfg::Configuration> configs;
  for (std::size_t i = 0; i < n; ++i) {
    cfg::Configuration config = space.default_configuration();
    config.set_index(i % space.num_parameters(),
                     1 + i % (space.parameter(i % space.num_parameters())
                                  .domain.size() -
                              1));
    configs.push_back(config);
  }
  return configs;
}

void expect_identical(const TuningResult& a, const TuningResult& b) {
  EXPECT_DOUBLE_EQ(a.initial_perf, b.initial_perf);
  EXPECT_DOUBLE_EQ(a.best_perf, b.best_perf);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.generations_run, b.generations_run);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t g = 0; g < a.history.size(); ++g) {
    EXPECT_DOUBLE_EQ(a.history[g].generation_best_perf,
                     b.history[g].generation_best_perf);
    EXPECT_DOUBLE_EQ(a.history[g].best_perf, b.history[g].best_perf);
    EXPECT_DOUBLE_EQ(a.history[g].cumulative_seconds,
                     b.history[g].cumulative_seconds);
    EXPECT_EQ(a.history[g].subset, b.history[g].subset);
  }
  ASSERT_TRUE(a.best_config.has_value());
  ASSERT_TRUE(b.best_config.has_value());
  EXPECT_EQ(a.best_config->indices(), b.best_config->indices());
}

TEST(EvalEngine, ParallelBatchMatchesSerial) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const std::vector<cfg::Configuration> configs = some_configs(space, 8);
  auto serial = hacc_objective();
  const std::vector<Evaluation> expected = serial->evaluate_batch(configs);
  for (unsigned workers : {1u, 4u, 8u}) {
    EvalEngine engine(EngineOptions{workers});
    EXPECT_EQ(engine.workers(), workers);
    auto objective = hacc_objective();
    const std::vector<Evaluation> got =
        engine.evaluate_batch(*objective, configs);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].perf_mbps, expected[i].perf_mbps)
          << "workers=" << workers << " config=" << i;
      EXPECT_EQ(got[i].eval_seconds, expected[i].eval_seconds)
          << "workers=" << workers << " config=" << i;
    }
    EXPECT_EQ(objective->evaluations(), configs.size());
  }
}

TEST(EvalEngine, SharedAcrossConcurrentBatches) {
  EvalEngine engine(EngineOptions{4});
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const std::vector<cfg::Configuration> configs = some_configs(space, 6);
  SyntheticObjective objective;
  const std::vector<Evaluation> expected =
      objective.evaluate_batch(configs);
  std::vector<std::thread> clients;
  std::vector<std::vector<Evaluation>> results(4);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      SyntheticObjective mine;
      results[c] = engine.evaluate_batch(mine, configs);
    });
  }
  for (std::thread& t : clients) t.join();
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), expected.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_EQ(r[i].perf_mbps, expected[i].perf_mbps);
    }
  }
}

/// Same seed + same job ⇒ identical TuningResult for pool sizes 1/4/8,
/// and identical to the plain serial tuner without any service layer.
TEST(Determinism, PoolSizeDoesNotChangeTuningResult) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  GaOptions ga;
  ga.population = 8;
  ga.max_generations = 6;
  ga.seed = 42;

  auto baseline_objective = hacc_objective();
  GeneticTuner baseline(space, *baseline_objective, ga);
  const TuningResult expected = baseline.run();

  for (unsigned workers : {1u, 4u, 8u}) {
    EvalEngine engine(EngineOptions{workers});
    ResultCache cache;
    auto objective = hacc_objective();
    ServiceObjective service(*objective,
                             EvalBinding{&engine, &cache, /*fingerprint=*/7});
    GeneticTuner tuner(space, service, ga);
    const TuningResult result = tuner.run();
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_identical(result, expected);
  }
}

TEST(ResultCache, HitMissAndLruEviction) {
  CacheOptions options;
  options.capacity = 4;
  options.shards = 1;
  ResultCache cache(options);
  const std::vector<std::size_t> g0{0}, g1{1}, g2{2}, g3{3}, g4{4};

  EXPECT_FALSE(cache.get(1, g0).has_value());  // miss
  Evaluation eval;
  eval.perf_mbps = 10.0;
  eval.eval_seconds = 30.0;
  cache.put(1, g0, eval);
  cache.put(1, g1, eval);
  cache.put(1, g2, eval);
  cache.put(1, g3, eval);
  ASSERT_TRUE(cache.get(1, g0).has_value());  // refreshes g0's recency
  cache.put(1, g4, eval);                     // evicts g1 (LRU), not g0
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_TRUE(cache.get(1, g0).has_value());
  EXPECT_FALSE(cache.get(1, g1).has_value());

  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 5u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(stats.seconds_saved, 60.0);
}

TEST(ResultCache, FingerprintsNamespaceEntries) {
  ResultCache cache;
  const std::vector<std::size_t> genome{1, 2, 3};
  Evaluation eval;
  eval.perf_mbps = 5.0;
  cache.put(/*fingerprint=*/1, genome, eval);
  EXPECT_TRUE(cache.get(1, genome).has_value());
  EXPECT_FALSE(cache.get(2, genome).has_value());
}

TEST(ResultCache, JsonRoundTrip) {
  ResultCache cache;
  Evaluation a;
  a.perf_mbps = 123.4567890123;
  a.eval_seconds = 31.25;
  Evaluation b;
  b.perf_mbps = 0.0;
  b.eval_seconds = 1e-3;
  cache.put(11, {0, 1, 2}, a);
  cache.put(22, {5}, b);

  ResultCache copy;
  EXPECT_EQ(copy.load_json(cache.to_json()), 2u);
  auto got_a = copy.get(11, {0, 1, 2});
  ASSERT_TRUE(got_a.has_value());
  EXPECT_EQ(got_a->perf_mbps, a.perf_mbps);
  EXPECT_EQ(got_a->eval_seconds, a.eval_seconds);
  auto got_b = copy.get(22, {5});
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(got_b->perf_mbps, b.perf_mbps);

  ResultCache empty;
  ResultCache from_empty;
  EXPECT_EQ(from_empty.load_json(empty.to_json()), 0u);
  EXPECT_THROW(from_empty.load_json("{\"entries\":"), Error);
}

TEST(ResultCache, FilePersistence) {
  const std::string path = ::testing::TempDir() + "tunio_cache_test.json";
  {
    ResultCache cache;
    Evaluation eval;
    eval.perf_mbps = 77.0;
    eval.eval_seconds = 42.0;
    cache.put(9, {4, 4, 4}, eval);
    ASSERT_TRUE(cache.save_file(path));
  }
  ResultCache loaded;
  ASSERT_TRUE(loaded.load_file(path));
  auto hit = loaded.get(9, {4, 4, 4});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->perf_mbps, 77.0);
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.load_file(path + ".does-not-exist"));
}

TEST(ServiceObjective, CacheHitsAreFreeAndCounted) {
  ResultCache cache;
  SyntheticObjective inner;
  ServiceObjective service(inner, EvalBinding{nullptr, &cache, 3});
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const cfg::Configuration config = space.default_configuration();

  const Evaluation first = service.evaluate(config);
  EXPECT_EQ(first.eval_seconds, 30.0);
  const Evaluation second = service.evaluate(config);
  EXPECT_EQ(second.perf_mbps, first.perf_mbps);
  // A hit re-runs nothing, so it bills nothing — exactly like a
  // GeneticTuner fitness-cache hit.
  EXPECT_EQ(second.eval_seconds, 0.0);
  EXPECT_EQ(inner.evaluations(), 1u);
  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_EQ(service.cache_misses(), 1u);
}

TEST(TuningServer, ConcurrentJobsMatchSequentialRuns) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  GaOptions ga;
  ga.population = 8;
  ga.max_generations = 5;
  ga.seed = 7;

  // Sequential ground truth: each workload tuned alone, no service.
  auto hacc_alone = hacc_objective();
  GeneticTuner hacc_tuner(space, *hacc_alone, ga);
  const TuningResult hacc_expected = hacc_tuner.run();
  auto flash_alone = flash_objective();
  GeneticTuner flash_tuner(space, *flash_alone, ga);
  const TuningResult flash_expected = flash_tuner.run();

  ServerOptions options;
  options.max_concurrent_jobs = 2;
  options.engine.workers = 2;
  TuningServer server(space, options);

  JobSpec hacc_job;
  hacc_job.name = "hacc";
  hacc_job.objective = hacc_objective();
  hacc_job.ga = ga;
  JobSpec flash_job;
  flash_job.name = "flash";
  flash_job.objective = flash_objective();
  flash_job.ga = ga;

  const JobId hacc_id = server.submit(hacc_job);
  const JobId flash_id = server.submit(flash_job);
  const TuningResult hacc_result = server.wait(hacc_id);
  const TuningResult flash_result = server.wait(flash_id);

  expect_identical(hacc_result, hacc_expected);
  expect_identical(flash_result, flash_expected);

  EXPECT_EQ(server.progress(hacc_id).state, JobState::kDone);
  EXPECT_EQ(server.progress(flash_id).state, JobState::kDone);
  const TuningServer::ServiceStats stats = server.stats();
  EXPECT_EQ(stats.jobs_submitted, 2u);
  EXPECT_EQ(stats.jobs_completed, 2u);
  EXPECT_EQ(stats.jobs_cancelled, 0u);
}

TEST(TuningServer, RepeatJobIsAllCacheHitsAndBillsNothing) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  ServerOptions options;
  options.max_concurrent_jobs = 1;
  options.engine.workers = 2;
  TuningServer server(space, options);

  auto objective = std::make_shared<SyntheticObjective>();
  JobSpec spec;
  spec.name = "repeat-me";
  spec.objective = objective;
  spec.ga.population = 8;
  spec.ga.max_generations = 4;
  spec.ga.seed = 3;

  const TuningResult first = server.wait(server.submit(spec));
  const std::uint64_t evals_after_first = objective->evaluations();
  EXPECT_GT(evals_after_first, 0u);

  const JobId second_id = server.submit(spec);
  const TuningResult second = server.wait(second_id);

  // Same spec ⇒ same genome stream ⇒ every evaluation is a cache hit:
  // nothing re-runs and nothing is billed.
  EXPECT_EQ(objective->evaluations(), evals_after_first);
  EXPECT_DOUBLE_EQ(second.total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(second.best_perf, first.best_perf);
  const JobProgress progress = server.progress(second_id);
  EXPECT_EQ(progress.cache_misses, 0u);
  EXPECT_EQ(progress.cache_hits, evals_after_first);
  EXPECT_GE(server.stats().cache.hit_rate(), 0.5);
}

TEST(TuningServer, CancellationLeavesTheSessionResumable) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  ServerOptions options;
  options.max_concurrent_jobs = 1;
  options.engine.workers = 2;
  TuningServer server(space, options);

  auto objective =
      std::make_shared<SyntheticObjective>(std::chrono::microseconds(2000));
  JobSpec spec;
  spec.name = "long-haul";
  spec.objective = objective;
  spec.ga.population = 8;
  spec.ga.max_generations = 10000;  // far more than we will allow to run
  spec.ga.seed = 5;

  const JobId id = server.submit(spec);
  while (server.progress(id).generations_done < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(server.cancel(id));
  const TuningResult partial = server.wait(id);

  const JobProgress progress = server.progress(id);
  EXPECT_EQ(progress.state, JobState::kCancelled);
  EXPECT_LT(partial.generations_run, spec.ga.max_generations);
  EXPECT_GE(partial.generations_run, 1u);
  ASSERT_TRUE(partial.best_config.has_value());
  ASSERT_TRUE(progress.best_indices.has_value());
  EXPECT_EQ(*progress.best_indices, partial.best_config->indices());

  // Resume: seed a short follow-up job with the cancelled run's best.
  JobSpec resume = spec;
  resume.ga.max_generations = 3;
  resume.ga.seed_indices = *progress.best_indices;
  const TuningResult resumed = server.wait(server.submit(resume));
  EXPECT_GE(resumed.best_perf, partial.best_perf);
  // The resumed run replays the seed genome from the shared cache.
  EXPECT_GT(server.stats().cache.hits, 0u);
}

TEST(TuningServer, CancelQueuedJobNeverRuns) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  ServerOptions options;
  options.max_concurrent_jobs = 1;
  TuningServer server(space, options);

  auto blocker =
      std::make_shared<SyntheticObjective>(std::chrono::microseconds(1000));
  JobSpec long_job;
  long_job.name = "blocker";
  long_job.objective = blocker;
  long_job.ga.population = 8;
  long_job.ga.max_generations = 200;

  auto starved = std::make_shared<SyntheticObjective>();
  JobSpec queued_job;
  queued_job.name = "queued";
  queued_job.objective = starved;
  queued_job.ga.population = 8;
  queued_job.ga.max_generations = 5;

  const JobId running = server.submit(long_job);
  const JobId queued = server.submit(queued_job);
  EXPECT_TRUE(server.cancel(queued));
  EXPECT_EQ(server.progress(queued).state, JobState::kCancelled);
  EXPECT_TRUE(server.cancel(running));
  server.wait_all();
  EXPECT_EQ(starved->evaluations(), 0u);
  EXPECT_FALSE(server.cancel(queued));  // already terminal
}

TEST(TuningServer, FailedJobReportsError) {
  class ThrowingObjective final : public tuner::Objective {
   public:
    std::string name() const override { return "throws"; }
    Evaluation evaluate(const cfg::Configuration&) override {
      throw Error("testbed exploded");
    }
    std::uint64_t evaluations() const override { return 0; }
  };

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  TuningServer server(space);
  JobSpec spec;
  spec.name = "doomed";
  spec.objective = std::make_shared<ThrowingObjective>();
  spec.ga.population = 8;
  spec.ga.max_generations = 2;
  const JobId id = server.submit(spec);
  EXPECT_THROW(server.wait(id), Error);
  const JobProgress progress = server.progress(id);
  EXPECT_EQ(progress.state, JobState::kFailed);
  EXPECT_NE(progress.error.find("testbed exploded"), std::string::npos);
  EXPECT_EQ(server.stats().jobs_failed, 1u);
}

}  // namespace
}  // namespace tunio::service
