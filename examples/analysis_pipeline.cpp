// analysis_pipeline: tuning a read-dominated analysis job (BD-CATS).
//
// Most tuning folklore optimizes writes; analysis pipelines spend their
// I/O time *reading*. TunIO's objective handles this through α:
// perf ≡ (1−α)·BW_r + α·BW_w weights whichever direction dominates the
// byte traffic, so tuning a clustering job optimizes read bandwidth
// without any special-casing. This example tunes BD-CATS and shows where
// the gains came from.
#include <cstdio>

#include "core/pipeline.hpp"
#include "trace/report.hpp"
#include "core/roti.hpp"
#include "tuner/objective.hpp"
#include "workloads/workload.hpp"

using namespace tunio;

int main() {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();

  wl::BdcatsParams params;
  params.particles_per_rank = 1 << 22;
  params.clustering_rounds = 4;
  tuner::TestbedOptions testbed;
  testbed.num_ranks = 128;
  auto objective = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_bdcats(params)), testbed);

  // Untuned run: show the α split.
  const auto before = objective->evaluate(space.default_configuration());
  std::printf("untuned: perf=%.0f MB/s  BW_r=%.0f  BW_w=%.0f  alpha=%.3f "
              "(read-dominated)\n",
              before.perf_mbps, before.detail.bw_read_mbps,
              before.detail.bw_write_mbps, before.detail.alpha);

  tuner::GaOptions ga;
  ga.max_generations = 25;
  const auto run = core::run_pipeline(
      space, *objective, nullptr,
      {"read tuning", false, core::StopPolicy::kHeuristic}, ga);

  const auto after = objective->evaluate(*run.result.best_config);
  std::printf("tuned:   perf=%.0f MB/s  BW_r=%.0f  BW_w=%.0f  alpha=%.3f\n",
              after.perf_mbps, after.detail.bw_read_mbps,
              after.detail.bw_write_mbps, after.detail.alpha);
  std::printf("\nread bandwidth improved %.1fx in %u iterations "
              "(%.0f tuning minutes, RoTI %.1f MB/s/min)\n",
              after.detail.bw_read_mbps /
                  std::max(1.0, before.detail.bw_read_mbps),
              run.result.generations_run, run.result.total_seconds / 60.0,
              core::final_roti(run.result));

  // Darshan-style summary of the tuned run.
  std::printf("\n%s", trace::report(after.detail).c_str());

  // What moved: print the non-default parameters of the winner.
  std::printf("\nconfiguration changes:\n");
  const cfg::Configuration defaults = space.default_configuration();
  for (std::size_t p = 0; p < space.num_parameters(); ++p) {
    if (run.result.best_config->index(p) != defaults.index(p)) {
      std::printf("  %-22s %12llu -> %llu\n",
                  space.parameter(p).name.c_str(),
                  static_cast<unsigned long long>(defaults.value(p)),
                  static_cast<unsigned long long>(
                      run.result.best_config->value(p)));
    }
  }
  return 0;
}
