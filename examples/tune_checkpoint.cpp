// tune_checkpoint: tuning a FLASH-style checkpoint workload.
//
// The scenario from the paper's introduction: a simulation checkpoints
// dozens of chunked datasets every few minutes, and the default stack
// configuration leaves an order of magnitude of bandwidth on the table.
// This example compares three ways of spending a tuning budget:
//   * no tuning at all,
//   * HSTuner with the 5%/5-iteration heuristic stopper,
//   * TunIO (impact-first subsets + RL early stopping).
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/roti.hpp"
#include "core/tunio.hpp"
#include "tuner/objective.hpp"
#include "workloads/workload.hpp"

using namespace tunio;

int main() {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();

  // The checkpoint workload: 12 chunked datasets, block-strided writes.
  wl::FlashParams params;
  params.blocks_per_rank = 16;
  params.block_bytes = 384 * KiB;  // production-size AMR blocks
  tuner::TestbedOptions testbed;
  testbed.num_ranks = 128;
  wl::RunOptions kernel_opts;
  kernel_opts.compute_scale = 0.0;  // tune the I/O kernel
  auto make_objective = [&] {
    return tuner::make_workload_objective(
        std::shared_ptr<const wl::Workload>(wl::make_flash(params)), testbed,
        kernel_opts);
  };

  // TunIO's agents, trained offline on the paper's representative kernel
  // suite (VPIC, FLASH, HACC) so the impact ranking generalizes.
  core::TunIO tunio(space);
  {
    tuner::TestbedOptions sweep_tb = testbed;
    sweep_tb.runs_per_eval = 1;
    auto vpic = tuner::make_workload_objective(
        std::shared_ptr<const wl::Workload>(wl::make_vpic()), sweep_tb,
        kernel_opts);
    auto flash = tuner::make_workload_objective(
        std::shared_ptr<const wl::Workload>(wl::make_flash(params)), sweep_tb,
        kernel_opts);
    auto hacc = tuner::make_workload_objective(
        std::shared_ptr<const wl::Workload>(wl::make_hacc()), sweep_tb,
        kernel_opts);
    std::printf("offline training (VPIC, FLASH, HACC sweeps + PCA)...\n\n");
    tunio.train_offline({vpic.get(), flash.get(), hacc.get()});
  }

  tuner::GaOptions ga;
  ga.max_generations = 50;

  auto heuristic_objective = make_objective();
  const auto heuristic = core::run_pipeline(
      space, *heuristic_objective, nullptr,
      {"HSTuner + heuristic", false, core::StopPolicy::kHeuristic}, ga);

  auto tunio_objective = make_objective();
  const auto tuned = core::run_pipeline(
      space, *tunio_objective, &tunio,
      {"TunIO", true, core::StopPolicy::kTunio}, ga);

  const double untuned = heuristic.result.initial_perf;
  std::printf("%-22s %14s %12s %14s %10s\n", "pipeline", "checkpoint bw",
              "iterations", "tuning budget", "RoTI");
  std::printf("%-22s %11.0f MB/s %12s %14s %10s\n", "no tuning", untuned, "-",
              "-", "-");
  std::printf("%-22s %11.0f MB/s %12u %11.0f min %10.1f\n",
              "HSTuner + heuristic", heuristic.result.best_perf,
              heuristic.result.generations_run,
              heuristic.result.total_seconds / 60.0,
              core::final_roti(heuristic.result));
  std::printf("%-22s %11.0f MB/s %12u %11.0f min %10.1f\n", "TunIO",
              tuned.result.best_perf, tuned.result.generations_run,
              tuned.result.total_seconds / 60.0,
              core::final_roti(tuned.result));

  // Viability: how many checkpoints until the tuning budget is repaid.
  auto checkpoint_minutes = [&](const cfg::Configuration& config) {
    mpisim::MpiSim mpi(testbed.num_ranks);
    pfs::PfsSimulator fs;
    auto flash = wl::make_flash(params);
    return flash->run(mpi, fs, cfg::resolve(config), kernel_opts)
               .sim_seconds /
           60.0;
  };
  const double untuned_min =
      checkpoint_minutes(space.default_configuration());
  const double tuned_min = checkpoint_minutes(*tuned.result.best_config);
  std::printf("\none checkpoint costs %.2f min untuned vs %.2f min tuned; "
              "the %.0f-minute tuning budget is repaid after %.0f "
              "checkpoints\n",
              untuned_min, tuned_min, tuned.result.total_seconds / 60.0,
              tuned.result.total_seconds / 60.0 /
                  std::max(1e-9, untuned_min - tuned_min));
  return 0;
}
