// whatif_explorer: one-parameter-at-a-time response surfaces.
//
// Before spending a tuning budget, a user (or a curious reader of the
// simulator) can ask "what does each knob do to *my* workload?". This
// sweeps every parameter of the 12-dimension space one at a time around
// the defaults for a chosen workload and prints the response — the same
// probing TunIO's offline sweep performs, exposed as a human-readable
// table.
//
// Usage: whatif_explorer [vpic|flash|hacc|macsio|bdcats]
#include <cstdio>
#include <cstring>
#include <memory>

#include "tuner/objective.hpp"
#include "workloads/workload.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "hacc";
  std::shared_ptr<const wl::Workload> workload;
  if (!std::strcmp(which, "vpic")) workload = wl::make_vpic();
  else if (!std::strcmp(which, "flash")) workload = wl::make_flash();
  else if (!std::strcmp(which, "macsio")) workload = wl::make_macsio();
  else if (!std::strcmp(which, "bdcats")) workload = wl::make_bdcats();
  else workload = wl::make_hacc();

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  tuner::TestbedOptions testbed;
  testbed.num_ranks = 128;
  testbed.runs_per_eval = 1;
  testbed.measurement_noise = 0.0;  // exact surface, no volatility
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;
  auto objective = tuner::make_workload_objective(workload, testbed, kernel);

  const cfg::Configuration defaults = space.default_configuration();
  const double base = objective->evaluate(defaults).perf_mbps;
  std::printf("workload: %s   default perf: %.0f MB/s\n\n",
              workload->name().c_str(), base);
  std::printf("%-22s %-56s %s\n", "parameter", "perf across domain (MB/s)",
              "best/default");

  for (std::size_t p = 0; p < space.num_parameters(); ++p) {
    const cfg::Parameter& param = space.parameter(p);
    std::printf("%-22s ", param.name.c_str());
    double best = base;
    std::string row;
    for (std::size_t v = 0; v < param.domain.size(); ++v) {
      cfg::Configuration probe = defaults;
      probe.set_index(p, v);
      const double perf = objective->evaluate(probe).perf_mbps;
      best = std::max(best, perf);
      char cell[16];
      std::snprintf(cell, sizeof cell, "%6.0f", perf);
      row += cell;
    }
    std::printf("%-56s %10.2fx\n", row.c_str(), best / base);
  }

  std::printf("\n(each row sweeps one parameter with the others at their "
              "defaults; the interplay between parameters is what the "
              "genetic tuner explores)\n");
  return 0;
}
