// interactive_session: refine a configuration across installments.
//
// The paper's §VI sketches "an interactive session feature where a
// configuration can be refined over time across a series of runs" —
// implemented here as core::InteractiveSession. A user tunes for a few
// generations when the machine is idle, takes the current best
// configuration into production, and resumes later; each installment
// seeds the genetic search with the best configuration so far and the
// RL agents keep learning across installments.
#include <cstdio>

#include "core/session.hpp"
#include "tuner/objective.hpp"
#include "workloads/workload.hpp"

using namespace tunio;

int main() {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  core::TunIO tunio(space);

  // The application being refined: MACSio-style dumps.
  tuner::TestbedOptions testbed;
  testbed.num_ranks = 128;
  wl::RunOptions kernel_opts;
  kernel_opts.compute_scale = 0.0;
  auto objective = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_macsio()), testbed,
      kernel_opts);

  tuner::GaOptions ga;
  ga.population = 12;
  core::InteractiveSession session(tunio, *objective, ga);

  // Three installments of 6 generations, as if spread over three idle
  // windows in a job queue.
  for (int installment = 1; installment <= 3; ++installment) {
    const auto result = session.step(6);
    std::printf("installment %d: ran %u generations (%.0f simulated min), "
                "session best now %.0f MB/s\n",
                installment, result.generations_run,
                result.total_seconds / 60.0, session.best_perf());
  }

  std::printf("\nacross %u generations in %u installments "
              "(%.0f tuning minutes total):\n",
              session.total_generations(), session.steps_taken(),
              session.total_seconds() / 60.0);
  std::printf("  initial perf: %.0f MB/s\n", session.initial_perf());
  std::printf("  best perf:    %.0f MB/s (%.1fx)\n", session.best_perf(),
              session.best_perf() / session.initial_perf());
  std::printf("\ncurrent best configuration:\n%s",
              session.export_xml().c_str());
  return 0;
}
