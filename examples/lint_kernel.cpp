// lint_kernel: the I/O anti-pattern linter CLI.
//
// Runs the static analyzer over mini-C sources and prints one diagnostic
// per finding, `<function>:<line>:<col>: <severity>: <kind>: <message>
// [hints: ...]`. The hints are config-space parameter names; piping them
// into core::SmartConfigGen::apply_hints biases the tuner's impact
// ranking before any configuration has been measured.
//
// Usage:
//   lint_kernel [FILE...]
//
// Without arguments all five built-in workload sources are linted.
// Exits nonzero when any finding has error severity (CI gates on this).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.hpp"
#include "common/error.hpp"
#include "workloads/sources.hpp"

using namespace tunio;

namespace {

/// Lints one source; returns true when error-severity findings exist.
bool lint_one(const std::string& label, const std::string& source) {
  std::printf("== %s ==\n", label.c_str());
  try {
    const analysis::LintReport report = analysis::lint_source(source);
    if (report.diagnostics.empty()) {
      std::printf("  (clean)\n");
      return false;
    }
    for (const analysis::Diagnostic& d : report.diagnostics) {
      std::printf("  %s\n", analysis::format(d).c_str());
    }
    const auto hints = report.tuning_hints();
    if (!hints.empty()) {
      std::printf("  tuning hints:");
      for (const auto& [param, weight] : hints) {
        std::printf(" %s=%.2f", param.c_str(), weight);
      }
      std::printf("\n");
    }
    return report.has_errors();
  } catch (const tunio::Error& e) {
    std::fprintf(stderr, "  lint failed: %s\n", e.what());
    return true;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: lint_kernel [FILE...]\n");
      return 0;
    }
    std::ifstream in(arg);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", arg.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    inputs.emplace_back(arg, buffer.str());
  }
  if (inputs.empty()) {
    inputs.emplace_back("macsio_vpic", wl::sources::macsio_vpic());
    inputs.emplace_back("vpic", wl::sources::vpic());
    inputs.emplace_back("flash", wl::sources::flash());
    inputs.emplace_back("hacc", wl::sources::hacc());
    inputs.emplace_back("bdcats", wl::sources::bdcats());
  }

  bool any_errors = false;
  for (const auto& [label, source] : inputs) {
    any_errors = lint_one(label, source) || any_errors;
  }
  return any_errors ? 1 : 0;
}
