// Tuning as a service: a shared TuningServer handles several clients'
// jobs concurrently over one evaluation engine and one result cache.
//
// The scenario: a facility runs a central tuning service. Three client
// teams submit jobs for their applications (HACC, FLASH, VPIC I/O
// kernels); the server runs two at a time, fanning each generation out
// over the worker pool. Later, a second client re-tunes HACC — and pays
// almost nothing, because every evaluation its GA replays is already in
// the shared result cache. Finally the cache is persisted to JSON, the
// way a long-running service would checkpoint its accumulated knowledge.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "config/space.hpp"
#include "core/early_stopping.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "service/tuning_server.hpp"
#include "tuner/objective.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tunio;

std::shared_ptr<tuner::Objective> kernel_objective(
    std::unique_ptr<wl::Workload> workload) {
  tuner::TestbedOptions tb;
  tb.num_ranks = 32;
  tb.runs_per_eval = 3;
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;  // tune the I/O kernel, not the compute
  return std::shared_ptr<tuner::Objective>(tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(std::move(workload)), tb, kernel));
}

void print_progress(const service::TuningServer& server,
                    const std::vector<service::JobId>& ids) {
  for (service::JobId id : ids) {
    const service::JobProgress p = server.progress(id);
    std::printf("  job %llu %-8s %-9s gen %3u  best %8.1f MB/s  "
                "budget %7.1f s  cache %llu/%llu\n",
                static_cast<unsigned long long>(p.id), p.name.c_str(),
                service::job_state_name(p.state).c_str(), p.generations_done,
                p.best_perf, p.seconds_spent,
                static_cast<unsigned long long>(p.cache_hits),
                static_cast<unsigned long long>(p.cache_hits +
                                                p.cache_misses));
  }
}

}  // namespace

int main() {
  // Record the whole service session as a Chrome trace: PFS requests and
  // MPI collectives on the per-run clock, GA generations and RL stop
  // decisions on the budget clock. The cap keeps the trace file small —
  // overflow is counted, not fatal.
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_capacity(1u << 16);
  tracer.enable();

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();

  service::ServerOptions options;
  options.max_concurrent_jobs = 2;  // two tuning jobs share the engine
  options.engine.workers = 4;
  std::printf("== tuning service: %u job slots, %u evaluation workers ==\n\n",
              options.max_concurrent_jobs, options.engine.workers);
  service::TuningServer server(space, options);

  tuner::GaOptions ga;
  ga.population = 8;
  ga.max_generations = 6;

  std::vector<service::JobId> ids;
  {
    service::JobSpec job;
    job.name = "hacc";
    job.objective = kernel_objective(wl::make_hacc({1u << 18}));
    job.ga = ga;
    // Consult the RL early-stopping agent after every generation. With
    // min_iterations (10) above this job's 6-generation budget it never
    // actually stops — but every consultation lands in the trace as an
    // "rl" decision with the agent's Q-values.
    auto stopper = std::make_shared<core::EarlyStopping>();
    job.stopper = [stopper](unsigned generation,
                            const tuner::TuningResult& progress) {
      return stopper->stop(generation, progress.best_perf);
    };
    ids.push_back(server.submit(job));
  }
  {
    service::JobSpec job;
    job.name = "flash";
    job.objective = kernel_objective(wl::make_flash({}));
    job.ga = ga;
    ids.push_back(server.submit(job));
  }
  {
    service::JobSpec job;
    job.name = "vpic";
    job.objective = kernel_objective(wl::make_vpic({1u << 16}));
    job.ga = ga;
    ids.push_back(server.submit(job));
  }

  std::printf("three jobs submitted; polling while the server works:\n");
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    print_progress(server, ids);
    std::printf("\n");
    bool all_done = true;
    for (service::JobId id : ids) {
      const service::JobState state = server.progress(id).state;
      all_done = all_done && state != service::JobState::kQueued &&
                 state != service::JobState::kRunning;
    }
    if (all_done) break;
  }

  for (service::JobId id : ids) {
    const tuner::TuningResult result = server.wait(id);
    const service::JobProgress p = server.progress(id);
    std::printf("%-6s tuned: %8.1f -> %8.1f MB/s in %u generations "
                "(%.1f simulated s)\n",
                p.name.c_str(), result.initial_perf, result.best_perf,
                result.generations_run, result.total_seconds);
  }

  // A second client re-tunes HACC with the same budget: the shared cache
  // already holds every evaluation its GA will ask for.
  std::printf("\nrepeat client re-tunes hacc (same spec, shared cache):\n");
  service::JobSpec repeat;
  repeat.name = "hacc";
  repeat.objective = kernel_objective(wl::make_hacc({1u << 18}));
  repeat.ga = ga;
  const service::JobId repeat_id = server.submit(repeat);
  const tuner::TuningResult rerun = server.wait(repeat_id);
  const service::JobProgress rp = server.progress(repeat_id);
  std::printf("  same best (%.1f MB/s), %llu cache hits, %llu misses, "
              "simulated cost %.1f s\n",
              rerun.best_perf, static_cast<unsigned long long>(rp.cache_hits),
              static_cast<unsigned long long>(rp.cache_misses),
              rerun.total_seconds);

  const service::TuningServer::ServiceStats stats = server.stats();
  std::printf("\nservice totals: %llu jobs, %llu engine evaluations, "
              "cache hit rate %.0f%% (%.0f simulated s saved)\n",
              static_cast<unsigned long long>(stats.jobs_submitted),
              static_cast<unsigned long long>(stats.engine_evaluations),
              100.0 * stats.cache.hit_rate(), stats.cache.seconds_saved);

  // Checkpoint the accumulated results the way a long-running service
  // would on shutdown (and reload them on the next start).
  const std::string path = "/tmp/tunio_service_cache.json";
  if (server.cache().save_file(path)) {
    service::ResultCache warm;
    warm.load_file(path);
    std::printf("cache checkpointed to %s (%zu entries reloadable)\n",
                path.c_str(), warm.size());
  }

  // Observability wrap-up: dump the recorded trace (openable in
  // chrome://tracing / Perfetto) and the process-wide metric totals.
  const std::string trace_path = "tuning_service_trace.json";
  if (tracer.write_file(trace_path)) {
    std::printf("\ntrace written to %s (%zu events, %llu dropped)\n",
                trace_path.c_str(), tracer.size(),
                static_cast<unsigned long long>(tracer.dropped()));
  }
  const obs::MetricsSnapshot metrics = obs::MetricsRegistry::global().snapshot();
  const std::uint64_t collectives =
      metrics.counter("mpi.barriers") + metrics.counter("mpi.allreduces") +
      metrics.counter("mpi.gathers") + metrics.counter("mpi.broadcasts");
  std::printf("metrics: %llu PFS reads, %llu PFS writes, %llu MPI "
              "collectives, %llu tuner generations, %llu RL stop decisions\n",
              static_cast<unsigned long long>(metrics.counter("pfs.reads")),
              static_cast<unsigned long long>(metrics.counter("pfs.writes")),
              static_cast<unsigned long long>(collectives),
              static_cast<unsigned long long>(
                  metrics.counter("tuner.generations")),
              static_cast<unsigned long long>(
                  metrics.counter("rl.early_stop.decisions")));
  std::printf("evaluation fast path: %llu replayed, %llu interpreted\n",
              static_cast<unsigned long long>(
                  metrics.counter("tuner.eval.replayed")),
              static_cast<unsigned long long>(
                  metrics.counter("tuner.eval.interpreted")));
  return 0;
}
