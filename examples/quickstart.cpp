// Quickstart: tune an HPC application's I/O stack with TunIO.
//
// This walks the whole Table-I API in one sitting:
//   1. run the application untuned on the simulated testbed;
//   2. reduce its source to an I/O kernel (discover_io);
//   3. train TunIO's RL components offline;
//   4. tune with impact-first subsets (subset_picker) and RL early
//      stopping (stop) wired into the genetic pipeline;
//   5. export the winning configuration as an H5Tuner-style XML file.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "config/xml.hpp"
#include "core/pipeline.hpp"
#include "core/roti.hpp"
#include "core/tunio.hpp"
#include "tuner/objective.hpp"
#include "workloads/workload.hpp"

using namespace tunio;

int main() {
  // The configuration space: 12 parameters across HDF5, MPI-IO, Lustre.
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  std::printf("Tuning space: %zu parameters, %.3g permutations\n\n",
              space.num_parameters(), space.permutations());

  // The application: HACC's checkpoint kernel on a 4-node/128-rank
  // simulated testbed (modest particle counts: this is a demo).
  wl::HaccParams params;
  params.particles_per_rank = 1 << 20;
  tuner::TestbedOptions testbed;
  testbed.num_ranks = 128;
  auto objective = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc(params)), testbed);

  // 1. Untuned baseline.
  const auto baseline = objective->evaluate(space.default_configuration());
  std::printf("untuned perf: %.0f MB/s\n", baseline.perf_mbps);

  // 2-3. TunIO with offline training (sweeps VPIC/FLASH/HACC kernels,
  // trains the early stopper on synthetic tuning curves).
  core::TunIO tunio(space);
  {
    tuner::TestbedOptions sweep_tb = testbed;
    sweep_tb.runs_per_eval = 1;
    wl::RunOptions kernel_opts;
    kernel_opts.compute_scale = 0.0;
    auto vpic = tuner::make_workload_objective(
        std::shared_ptr<const wl::Workload>(wl::make_vpic()), sweep_tb,
        kernel_opts);
    auto flash = tuner::make_workload_objective(
        std::shared_ptr<const wl::Workload>(wl::make_flash()), sweep_tb,
        kernel_opts);
    auto hacc = tuner::make_workload_objective(
        std::shared_ptr<const wl::Workload>(wl::make_hacc()), sweep_tb,
        kernel_opts);
    std::printf("training TunIO offline (parameter sweeps + PCA + synthetic "
                "tuning curves)...\n");
    tunio.train_offline({vpic.get(), flash.get(), hacc.get()});
  }
  std::printf("impact-ranked parameters:");
  for (std::size_t p : tunio.smart_config().ranking()) {
    std::printf(" %s", space.parameter(p).name.c_str());
  }
  std::printf("\n\n");

  // 4. Tune: genetic pipeline + Smart Configuration Generation + RL stop.
  tuner::GaOptions ga;
  ga.max_generations = 30;
  tuner::GeneticTuner tuner(space, *objective, ga);
  tunio.attach(tuner);
  const tuner::TuningResult result = tuner.run();

  std::printf("tuning finished after %u generations (%.1f simulated "
              "minutes)%s\n",
              result.generations_run, result.total_seconds / 60.0,
              result.early_stopped ? " — stopped early by the RL agent" : "");
  std::printf("tuned perf: %.0f MB/s (%.1fx the untuned stack)\n",
              result.best_perf, result.best_perf / baseline.perf_mbps);
  std::printf("return on tuning investment: %.1f MB/s per minute\n\n",
              core::final_roti(result));

  // 5. The winning configuration, H5Tuner-style.
  std::printf("best configuration (H5Tuner XML):\n%s\n",
              cfg::to_xml(*result.best_config).c_str());
  return 0;
}
