// discover_kernel: the Application I/O Discovery CLI (§III-E Use Case).
//
// "TunIO ... provides a CLI tool for the Application I/O Discovery
// component. This tool converts the source code to its equivalent I/O
// kernel, which the user can compile using their preferred method and
// use as a substitute for the application during the configuration
// evaluation phase."
//
// Usage:
//   discover_kernel [--reduce <fraction>] [--switch-paths] [--run] [FILE]
//
// FILE is a mini-C source file; without it, the built-in MACSio-VPIC
// source is used. `--reduce 0.01` applies 1% Loop Reduction,
// `--switch-paths` applies I/O Path Switching, and `--run` executes both
// the original and the kernel on the simulated stack and compares them.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "config/stack_settings.hpp"
#include "discovery/discovery.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"
#include "workloads/sources.hpp"

using namespace tunio;

namespace {

void compare_runs(const std::string& label, const minic::Program& program,
                  double extrapolate_note) {
  (void)extrapolate_note;
  mpisim::MpiSim mpi(128);
  pfs::PfsSimulator fs;
  const auto result =
      interp::execute(program, mpi, fs, cfg::default_settings(), {});
  std::printf("  %-10s perf=%8.1f MB/s  elapsed=%8.1fs  writes=%8llu  "
              "bytes=%.3f GiB  (extrapolated bytes %.3f GiB)\n",
              label.c_str(), result.perf.perf_mbps, result.sim_seconds,
              static_cast<unsigned long long>(result.perf.counters.write_ops),
              result.perf.counters.bytes_written / double(1ull << 30),
              result.predicted_bytes_written / double(1ull << 30));
}

}  // namespace

int main(int argc, char** argv) {
  discovery::DiscoveryOptions options;
  bool run_comparison = false;
  std::string file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reduce" && i + 1 < argc) {
      options.loop_reduction = std::atof(argv[++i]);
    } else if (arg == "--switch-paths") {
      options.path_switching = true;
    } else if (arg == "--run") {
      run_comparison = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: discover_kernel [--reduce <fraction>] "
                  "[--switch-paths] [--run] [FILE]\n");
      return 0;
    } else {
      file = arg;
    }
  }

  std::string source;
  if (file.empty()) {
    std::printf("// no input file: using the built-in MACSio-VPIC source\n");
    source = wl::sources::macsio_vpic();
  } else {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  try {
    const auto kernel = discovery::discover_io(source, options);
    std::printf("// I/O kernel: kept %d of %d statements",
                kernel.kept_statements, kernel.total_statements);
    if (kernel.loop_reduction_divisor > 1) {
      std::printf(", loop reduction 1/%d", kernel.loop_reduction_divisor);
    }
    std::printf("\n\n%s", kernel.kernel_source.c_str());

    if (run_comparison) {
      std::printf("\n// executing both on the simulated stack "
                  "(default configuration):\n");
      compare_runs("original", minic::parse(source), 1.0);
      compare_runs("kernel", kernel.kernel, 1.0);
    }
  } catch (const tunio::SourceError& e) {
    // "If the I/O kernel of the application causes an error, TunIO will
    // revert to using the full application."
    std::fprintf(stderr, "discovery failed (%s): falling back to the full "
                 "application\n", e.what());
    std::printf("%s", source.c_str());
    return 2;
  }
  return 0;
}
